// Fault-injection campaigns: the engine behind the paper's §4 claims.
//
// Theorem 3 states S_FT "produces either a correct bitonic sort or stops with
// an error in the presence of at most n-1 faulty nodes".  A campaign
// generates many randomized-but-reproducible fault scenarios per adversary
// class, runs S_FT (and S_NR, for contrast) under each, and classifies the
// outcome:
//
//   detected      — fail-stop: some node signalled ERROR (the fault may also
//                   have been harmless; detection still counts: the paper's
//                   algorithm halts whenever *behaviour* deviates),
//   masked        — the run terminated silently with a correct sort (the
//                   deviation never altered observable behaviour, e.g. a
//                   compare-exchange corrupted into the value it already had),
//   silent-wrong  — terminated silently with a WRONG sort.  Must be zero for
//                   S_FT within the resilience bound; S_NR exists to show a
//                   non-zero column here.
//
// Scenarios whose injection point is never reached (the mutator fired zero
// times and the node fault is inactive) are re-drawn, so every counted run
// really contains a fault.
//
// Execution engine (docs/PROTOCOL.md §8): campaigns are slot-based.  Class c
// owns runs_per_class slots; attempt a of slot i draws its scenario from a
// fresh Rng seeded with util::derive_seed(cfg.seed, stream(c), i, a) — a pure
// function of the campaign seed, never a shared generator.  A slot redraws
// (next attempt) while its injection goes unexercised, up to kMaxSlotAttempts;
// a slot that never lands is *dropped* and surfaced in the tally, not
// silently backfilled.  Because slots are independent they execute across a
// util::ThreadPool when cfg.jobs > 1, and aggregation always walks slots in
// (class, index) order, so the CampaignSummary is bit-identical for any job
// count, including the serial jobs == 1 path.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/adversary.h"
#include "sort/driver.h"
#include "transport/backend.h"
#include "util/rng.h"
#include "util/topology.h"

namespace aoft::obs {
class Tracer;
class MetricsRegistry;
}  // namespace aoft::obs

namespace aoft::fault {

enum class FaultClass : std::uint8_t {
  kCorruptData,       // link: operand corrupted at one exchange
  kCorruptGossip,     // link: own gossiped entry uniformly corrupted
  kTwoFacedGossip,    // link: gossiped entry corrupted to half the peers only
  kRelayTamper,       // link: a *relayed* third-party entry corrupted
  kDropMessage,       // link: one message dropped
  kDeadLink,          // link: one directed link dead from a point onward
  kGarbleLbs,         // link: whole piggybacked slice randomized
  kReplayStale,       // link: later gossip replaced by a recorded stale copy
  kHaltNode,          // processor: fail-silent from a point onward
  kInvertDirection,   // processor: compare-exchange direction inverted
  kSubstituteValue,   // processor: consistent liar (fabricated element)
};

const char* to_string(FaultClass c);

// Smallest cube dimension on which the class is injectable.  Value
// substitution needs a validated previous stage and a stale replay needs an
// earlier same-window message, so both require stage >= 1, i.e. dim >= 2;
// every other class fits any cube with at least one link (dim >= 1).
// Campaigns skip classes with cfg.dim < min_dim(c) (their tally reports every
// slot dropped); draw_scenario additionally clamps out-of-range stage draws
// so a direct call on a tiny cube is safe rather than undefined.
int min_dim(FaultClass c);

inline constexpr FaultClass kAllFaultClasses[] = {
    FaultClass::kCorruptData,   FaultClass::kCorruptGossip,
    FaultClass::kTwoFacedGossip, FaultClass::kRelayTamper,
    FaultClass::kDropMessage,   FaultClass::kDeadLink,
    FaultClass::kGarbleLbs,     FaultClass::kReplayStale,
    FaultClass::kHaltNode,      FaultClass::kInvertDirection,
    FaultClass::kSubstituteValue,
};

// One concrete, reproducible scenario.
struct Scenario {
  FaultClass fclass{};
  int dim = 3;
  std::size_t block = 1;
  cube::NodeId faulty = 0;
  StagePoint point{};
  sim::Key delta = 1;
  std::uint64_t input_seed = 0;
  cube::NodeId aux_node = 0;  // relay victim / dead-link destination

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

// Outcome of one scenario under one algorithm.
struct ScenarioResult {
  Scenario scenario;
  sort::Outcome outcome{};
  bool fault_exercised = false;       // the injection actually fired
  sim::ErrorSource first_detector{};  // valid when outcome == kFailStop
  int detection_stage = -1;           // stage of the first error report
  // Injections that actually fired during the run: interceptor touches for
  // link classes (a from-point-onward mutator can fire many times), 1 for
  // processor faults.
  std::uint64_t faults_fired = 0;
};

struct ClassTally {
  FaultClass fclass{};
  int runs = 0;
  int detected = 0;
  int masked = 0;
  int silent_wrong = 0;
  // Redraw accounting: `attempts` counts every scenario execution consumed by
  // this class (exercised or not); `dropped` counts slots that exhausted
  // their redraw budget without exercising a fault, so runs == requested
  // slots - dropped.  Benches must surface dropped instead of quietly
  // reporting percentages over a smaller denominator.
  int attempts = 0;
  int dropped = 0;
  // Runs in which the injection fired more than once (a from-point-onward
  // mutator touching several messages).
  int multi_fired = 0;
};

struct CampaignConfig {
  int dim = 4;
  std::size_t block = 1;
  int runs_per_class = 25;
  std::uint64_t seed = 1;
  // Ablation: forwarded to SftOptions so benches can measure which predicate
  // catches which class.
  bool check_progress = true;
  bool check_feasibility = true;
  bool check_consistency = true;
  bool check_exchange = true;
  // Worker threads for scenario execution: 1 = serial (default), 0 = one per
  // hardware thread, N > 1 = fixed pool of N.  The summary is bit-identical
  // for every value — jobs trades wall-clock only, never results.
  int jobs = 1;
  // Where those workers run (util/topology.h): none (default) leaves them to
  // the OS scheduler; compact/scatter/explicit pin each worker to a CPU so
  // its thread-local pools, rings and leased machine stay cache- and
  // NUMA-local.  Placement changes wall-clock only: results, traces and
  // metrics are aggregated in (class, slot) order regardless of which core
  // ran a slot, so every policy is bit-identical to every other (proved by
  // tests/fault/campaign_placement_test.cpp).  When a tracer is attached and
  // the policy is not none, the engine records the pin *plan* as worker.cpu
  // / worker.node instant events — environment metadata that trace_inspect
  // --diff excludes from determinism comparisons.  Only applied when the
  // resolved job count actually spins up a pool (jobs != 1); an explicit
  // policy naming an unavailable CPU makes the campaign throw.
  util::PlacementPolicy placement;
  // Keep one simulated Machine per worker thread, reset() between scenarios,
  // instead of reconstructing channels/contexts per attempt.  A reset machine
  // is observably identical to a fresh one, so results and traces do not
  // depend on this flag; it exists so bench/campaign_throughput can measure
  // the unpooled construct-per-scenario baseline from the same binary.
  bool reuse_machines = true;
  // How many consecutive slots a pool worker claims per grab (>= 1).  Batching
  // extends reuse_machines: a worker runs `scenario_batch` scenarios back to
  // back on its leased machine, so machine state, key pools and the kernel
  // dispatch table stay cache-hot between scenarios instead of being evicted
  // by another worker's claim bouncing the shared counter line.  Like jobs and
  // placement this is execution metadata: slots still land in disjoint
  // pre-sized vectors and aggregate in (class, slot) order, so summaries,
  // streams and traces are bit-identical for every batch size — it is
  // deliberately NOT part of the checkpoint identity (campaign_store.h).
  int scenario_batch = 1;
  // Optional observability sinks (obs/).  Each slot collects into a private
  // per-slot tracer/registry bound to the executing worker thread; after the
  // pool drains, the engine appends/merges them into these in (class, slot)
  // order — so the combined trace and metrics are bit-identical for every
  // `jobs` value, exactly like the CampaignSummary.  Null = no collection.
  // On a resumed campaign only the slots executed by *this* process
  // contribute trace events (completed slots are replayed from their
  // checkpoint records, not re-simulated).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // How injections arrive (fault_spec.h).  kScripted sweeps the FaultClass
  // scenario space; kIndependent/kRunLength run probabilistic soak slots
  // instead (run_soak_campaign).
  InjectionPolicy injection;
  // ---- durability (campaign_store.h, docs/PROTOCOL.md §10) ----
  // Non-empty: persist a slots-completed checkpoint here, written
  // crash-safely after every `checkpoint_every` newly completed slots.
  std::string checkpoint_path;
  // With `resume`, a checkpoint at checkpoint_path is loaded and its
  // completed slots are skipped; the final summary is bit-identical to an
  // uninterrupted run.  A missing file starts fresh; a corrupted or
  // mismatched one throws StoreError — unless `force_restart`, which
  // discards it loudly and starts clean.
  bool resume = false;
  bool force_restart = false;
  // Non-empty: stream one canonical JSONL record per slot (in global slot
  // order) here while the campaign runs.
  std::string stream_path;
  // Shard i of N sweeps the global slots g with g % shard_count ==
  // shard_index; tools/campaign_merge folds shard checkpoints back into the
  // canonical whole.
  int shard_index = 0;
  int shard_count = 1;
  // Checkpoint save cadence, in newly completed slots (>= 1).
  int checkpoint_every = 1;
  // Testing hook (kill-point simulation): when > 0, execute at most this
  // many pending slots, checkpoint, and return the partial summary.
  int stop_after_slots = 0;
  // Which transport executes the scenarios.  Campaigns currently require the
  // in-process simulator: the redraw loop reads adversary.touched() after
  // each attempt, and under the shm backend the interceptor fires inside a
  // forked child whose counters never reach this process.  run_campaign /
  // run_soak_campaign / run_multi_campaign throw std::invalid_argument on
  // any other value — a loud refusal, never a silently-sim campaign wearing
  // an shm label.  The field still participates in CampaignIdentity so a
  // future shm campaign's checkpoints can never be resumed against sim ones.
  transport::Backend backend = transport::Backend::kSim;
};

struct CampaignSummary {
  std::vector<ClassTally> sft;       // per class, algorithm S_FT
  std::vector<ClassTally> snr;       // per class, unprotected S_NR
  std::vector<ScenarioResult> runs;  // every S_FT run, for drill-down
  // Coverage: a full uninterrupted run has slots_done == slots_total; a
  // sharded or stopped-early run reports the records actually present.
  std::size_t slots_total = 0;
  std::size_t slots_done = 0;
};

// Redraw budget per slot: a slot whose injection is never exercised is
// re-drawn with the next attempt sub-seed at most this many times before it
// is counted as dropped.  Matches the old serial engine's global
// runs_per_class * 10 attempt cap, applied per slot.
inline constexpr int kMaxSlotAttempts = 10;

// Fault classes injectable at this dimension, in kAllFaultClasses order —
// the class axis of the scripted campaign's global slot space.
std::vector<FaultClass> active_classes(int dim);

// Draw a concrete scenario of the given class.
Scenario draw_scenario(FaultClass fclass, const CampaignConfig& cfg,
                       util::Rng& rng);

// Run one scenario under S_FT (protected) or S_NR (baseline).
ScenarioResult run_scenario_sft(const Scenario& s, const CampaignConfig& cfg);
ScenarioResult run_scenario_snr(const Scenario& s, const CampaignConfig& cfg);

// Full campaign: every class, cfg.runs_per_class exercised scenarios each,
// under both algorithms.
CampaignSummary run_campaign(const CampaignConfig& cfg);

// ---- multi-fault campaigns (Theorem 3's actual bound) -----------------------

// k simultaneous faults on k distinct nodes, classes drawn independently.
struct MultiScenario {
  int dim = 4;
  std::size_t block = 1;
  std::uint64_t input_seed = 0;
  std::vector<Scenario> faults;  // one per faulty node, aligned fields
};

struct MultiResult {
  sort::Outcome outcome{};
  bool fault_exercised = false;
  int detection_stage = -1;
};

MultiScenario draw_multi_scenario(int k, const CampaignConfig& cfg,
                                  util::Rng& rng);
MultiResult run_multi_scenario_sft(const MultiScenario& s,
                                   const CampaignConfig& cfg);

struct MultiTally {
  int k = 0;  // simultaneous faults
  int runs = 0;
  int detected = 0;
  int masked = 0;
  int silent_wrong = 0;
  int attempts = 0;  // multi-scenario executions consumed (see ClassTally)
  int dropped = 0;   // slots that never exercised a fault
};

// For k = 1 .. max_k: cfg.runs_per_class exercised multi-fault runs each.
// Theorem 3 promises silent_wrong == 0 for every k <= dim-1.
std::vector<MultiTally> run_multi_campaign(const CampaignConfig& cfg, int max_k);

// ---- probabilistic soak campaigns (InjectionMode != kScripted) --------------

// One soak run = one S_FT sort under probabilistic fault arrival
// (fault_spec.h): kIndependent corrupts each node-node message with
// probability p, kRunLength crashes one drawn node on its k-th send.  A
// slot redraws (fresh sub-seed) while no injection fires, exactly like the
// scripted engine, and the whole campaign is a pure function of
// (seed, mode, params) at every job count.
//
// Theorem 3's silent-wrong == 0 contract is asserted only while the
// faulty-node count stays within the <= n-1 resilience bound.  A run whose
// arrival pattern exceeds the bound is outside the theorem's hypothesis:
// a silent-wrong there is *recorded* — outcome plus the observed
// dislocation of the output — never counted as a violation.
struct SoakTally {
  int runs = 0;
  int detected = 0;
  int masked = 0;
  int silent_wrong_in_bound = 0;   // the gated column: must be 0
  int silent_wrong_beyond = 0;     // observed outside the theorem's bound
  int beyond_bound_runs = 0;       // runs with faulty_nodes > dim-1
  int multi_fired = 0;             // runs where > 1 injection fired
  long long faults_fired = 0;      // total injections across all runs
  int attempts = 0;
  int dropped = 0;
  std::uint64_t max_dislocation = 0;  // worst silent-wrong-beyond output
  std::size_t slots_total = 0;
  std::size_t slots_done = 0;
};

// Full soak campaign: cfg.runs_per_class slots under cfg.injection, with the
// same checkpoint/stream/shard surface as run_campaign.
SoakTally run_soak_campaign(const CampaignConfig& cfg);

// Max displacement of any element from its position in the stable-sorted
// copy of `output` — 0 iff sorted.  The honesty metric recorded for
// silent-wrong outcomes beyond the resilience bound (cf. the dislocation
// measure of the randomized-persistent-faults literature).
std::uint64_t max_dislocation(std::span<const sim::Key> output);

}  // namespace aoft::fault
