#include "fault/campaign_store.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "util/atomic_file.h"

namespace aoft::fault {

namespace {

// ---- little-endian serialization helpers ------------------------------------
// The checkpoint is read back on the machine that wrote it, but fixing the
// byte order anyway makes the digest (and the format spec in PROTOCOL.md §10)
// unambiguous.

void put_u8(std::string& b, std::uint8_t v) {
  b.push_back(static_cast<char>(v));
}

void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& b, std::int64_t v) {
  put_u64(b, static_cast<std::uint64_t>(v));
}

// Bounds-checked sequential reader: every get_* sets `ok = false` instead of
// running off the end, so a truncated payload surfaces as one loud status.
struct Reader {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;
  bool ok = true;

  bool need(std::size_t k) {
    if (!ok || n - off < k) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[off + i]} << (8 * i);
    off += 4;
    return v;
  }

  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[off + i]} << (8 * i);
    off += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
};

void put_record(std::string& b, const SlotRecord& r) {
  put_u64(b, r.gslot);
  put_i32(b, r.attempts);
  put_u8(b, r.exercised ? 1 : 0);
  put_u8(b, static_cast<std::uint8_t>(r.scenario.fclass));
  put_i32(b, r.scenario.dim);
  put_u64(b, r.scenario.block);
  put_u32(b, r.scenario.faulty);
  put_i32(b, r.scenario.point.stage);
  put_i32(b, r.scenario.point.iter);
  put_i64(b, r.scenario.delta);
  put_u64(b, r.scenario.input_seed);
  put_u32(b, r.scenario.aux_node);
  put_u8(b, static_cast<std::uint8_t>(r.outcome));
  put_u8(b, static_cast<std::uint8_t>(r.first_detector));
  put_i32(b, r.detection_stage);
  put_u8(b, r.snr_counted ? 1 : 0);
  put_u8(b, static_cast<std::uint8_t>(r.snr_outcome));
  put_u64(b, r.faults_fired);
  put_u32(b, r.faulty_nodes);
  put_u64(b, r.dislocation);
}

SlotRecord get_record(Reader& rd) {
  SlotRecord r;
  r.gslot = rd.u64();
  r.attempts = rd.i32();
  r.exercised = rd.u8() != 0;
  r.scenario.fclass = static_cast<FaultClass>(rd.u8());
  r.scenario.dim = rd.i32();
  r.scenario.block = rd.u64();
  r.scenario.faulty = rd.u32();
  r.scenario.point.stage = rd.i32();
  r.scenario.point.iter = rd.i32();
  r.scenario.delta = rd.i64();
  r.scenario.input_seed = rd.u64();
  r.scenario.aux_node = rd.u32();
  r.outcome = static_cast<sort::Outcome>(rd.u8());
  r.first_detector = static_cast<sim::ErrorSource>(rd.u8());
  r.detection_stage = rd.i32();
  r.snr_counted = rd.u8() != 0;
  r.snr_outcome = static_cast<sort::Outcome>(rd.u8());
  r.faults_fired = rd.u64();
  r.faulty_nodes = rd.u32();
  r.dislocation = rd.u64();
  return r;
}

StoreStatus fail(StoreStatus s, std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return s;
}

// Structural sanity of a decoded identity, before anything downstream
// divides by runs_per_class or shifts by dim.
bool identity_sane(const CampaignIdentity& id) {
  return id.dim >= 1 && id.dim <= 30 && id.block >= 1 &&
         id.runs_per_class >= 1 && id.mode <= 2 && id.transport <= 1 &&
         id.shard_count >= 1 && id.shard_index >= 0 &&
         id.shard_index < id.shard_count;
}

void classify_outcome(sort::Outcome o, int& detected, int& masked,
                      int& silent_wrong) {
  switch (o) {
    case sort::Outcome::kFailStop: ++detected; break;
    case sort::Outcome::kCorrect: ++masked; break;
    case sort::Outcome::kSilentWrong: ++silent_wrong; break;
  }
}

}  // namespace

bool CampaignIdentity::same_campaign(const CampaignIdentity& o) const {
  CampaignIdentity a = *this;
  CampaignIdentity b = o;
  a.shard_index = b.shard_index = 0;
  return a == b;
}

CampaignIdentity identity_of(const CampaignConfig& cfg) {
  CampaignIdentity id;
  id.dim = cfg.dim;
  id.block = cfg.block;
  id.runs_per_class = cfg.runs_per_class;
  id.seed = cfg.seed;
  id.mode = static_cast<std::uint8_t>(cfg.injection.mode);
  id.p_bits = std::bit_cast<std::uint64_t>(cfg.injection.p);
  id.k = cfg.injection.k;
  id.checks = (cfg.check_progress ? 1u : 0u) |
              (cfg.check_feasibility ? 2u : 0u) |
              (cfg.check_consistency ? 4u : 0u) |
              (cfg.check_exchange ? 8u : 0u);
  id.transport = static_cast<std::uint8_t>(cfg.backend);
  id.shard_index = cfg.shard_index;
  id.shard_count = cfg.shard_count;
  return id;
}

CampaignConfig config_of(const CampaignIdentity& id) {
  CampaignConfig cfg;
  cfg.dim = id.dim;
  cfg.block = id.block;
  cfg.runs_per_class = id.runs_per_class;
  cfg.seed = id.seed;
  cfg.check_progress = (id.checks & 1u) != 0;
  cfg.check_feasibility = (id.checks & 2u) != 0;
  cfg.check_consistency = (id.checks & 4u) != 0;
  cfg.check_exchange = (id.checks & 8u) != 0;
  cfg.injection.mode = static_cast<InjectionMode>(id.mode);
  cfg.injection.p = std::bit_cast<double>(id.p_bits);
  cfg.injection.k = id.k;
  cfg.backend = static_cast<transport::Backend>(id.transport);
  cfg.shard_index = id.shard_index;
  cfg.shard_count = id.shard_count;
  return cfg;
}

const char* to_string(StoreStatus s) {
  switch (s) {
    case StoreStatus::kOk: return "ok";
    case StoreStatus::kMissing: return "missing";
    case StoreStatus::kTruncated: return "truncated";
    case StoreStatus::kBadMagic: return "bad-magic";
    case StoreStatus::kBadVersion: return "bad-version";
    case StoreStatus::kDigestMismatch: return "digest-mismatch";
    case StoreStatus::kMalformed: return "malformed";
    case StoreStatus::kIdentityMismatch: return "identity-mismatch";
  }
  return "?";
}

bool save_checkpoint(const std::string& path, const CheckpointData& data,
                     std::string* error) {
  const auto& id = data.identity;
  std::string payload;
  put_u32(payload, kCheckpointVersion);
  put_i32(payload, id.dim);
  put_u64(payload, id.block);
  put_i32(payload, id.runs_per_class);
  put_u64(payload, id.seed);
  put_u8(payload, id.mode);
  put_u64(payload, id.p_bits);
  put_u64(payload, id.k);
  put_u32(payload, id.checks);
  put_u8(payload, id.transport);
  put_i32(payload, id.shard_index);
  put_i32(payload, id.shard_count);
  const std::uint64_t total = data.done.size();
  put_u64(payload, total);
  for (std::uint64_t byte = 0; byte < (total + 7) / 8; ++byte) {
    std::uint8_t v = 0;
    for (std::uint64_t bit = 0; bit < 8; ++bit) {
      const std::uint64_t g = byte * 8 + bit;
      if (g < total && data.done.test(g)) v |= std::uint8_t{1} << bit;
    }
    put_u8(payload, v);
  }
  put_u64(payload, data.records.size());
  for (const auto& rec : data.records) put_record(payload, rec);

  std::string file(kCheckpointMagic, sizeof(kCheckpointMagic));
  put_u64(file, util::fnv1a64(payload));
  file += payload;
  return util::write_file_atomic(path, file, error);
}

StoreStatus load_checkpoint(const std::string& path, CheckpointData* out,
                            std::string* error) {
  std::string file;
  std::string read_err;
  if (!util::read_file(path, &file, &read_err))
    return fail(StoreStatus::kMissing, error,
                "checkpoint " + path + ": " + read_err);
  if (file.size() < sizeof(kCheckpointMagic) + 8)
    return fail(StoreStatus::kTruncated, error,
                "checkpoint " + path + ": shorter than its header (" +
                    std::to_string(file.size()) + " bytes)");
  if (std::memcmp(file.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) != 0)
    return fail(StoreStatus::kBadMagic, error,
                "checkpoint " + path + ": not a campaign checkpoint file");
  Reader hdr{reinterpret_cast<const unsigned char*>(file.data()) +
                 sizeof(kCheckpointMagic),
             8};
  const std::uint64_t stored_digest = hdr.u64();
  const std::string_view payload(file.data() + sizeof(kCheckpointMagic) + 8,
                                 file.size() - sizeof(kCheckpointMagic) - 8);
  if (util::fnv1a64(payload) != stored_digest)
    return fail(StoreStatus::kDigestMismatch, error,
                "checkpoint " + path +
                    ": payload digest mismatch (file corrupted)");

  Reader rd{reinterpret_cast<const unsigned char*>(payload.data()),
            payload.size()};
  const std::uint32_t version = rd.u32();
  if (rd.ok && version != kCheckpointVersion)
    return fail(StoreStatus::kBadVersion, error,
                "checkpoint " + path + ": format version " +
                    std::to_string(version) + ", this build reads " +
                    std::to_string(kCheckpointVersion));
  CheckpointData data;
  data.identity.dim = rd.i32();
  data.identity.block = rd.u64();
  data.identity.runs_per_class = rd.i32();
  data.identity.seed = rd.u64();
  data.identity.mode = rd.u8();
  data.identity.p_bits = rd.u64();
  data.identity.k = rd.u64();
  data.identity.checks = rd.u32();
  data.identity.transport = rd.u8();
  data.identity.shard_index = rd.i32();
  data.identity.shard_count = rd.i32();
  const std::uint64_t total = rd.u64();
  if (!rd.ok)
    return fail(StoreStatus::kTruncated, error,
                "checkpoint " + path + ": truncated inside the identity block");
  if (!identity_sane(data.identity) ||
      total != identity_total_slots(data.identity))
    return fail(StoreStatus::kMalformed, error,
                "checkpoint " + path + ": identity block is not a valid "
                "campaign description");
  data.done = util::BitVec(total);
  for (std::uint64_t byte = 0; byte < (total + 7) / 8; ++byte) {
    const std::uint8_t v = rd.u8();
    if (!rd.ok) break;
    for (std::uint64_t bit = 0; bit < 8; ++bit) {
      const std::uint64_t g = byte * 8 + bit;
      if (g < total && ((v >> bit) & 1u)) data.done.set(g);
    }
  }
  const std::uint64_t record_count = rd.u64();
  if (!rd.ok)
    return fail(StoreStatus::kTruncated, error,
                "checkpoint " + path + ": truncated inside the slot bitmap");
  data.records.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    data.records.push_back(get_record(rd));
    if (!rd.ok)
      return fail(StoreStatus::kTruncated, error,
                  "checkpoint " + path + ": truncated at slot record " +
                      std::to_string(i) + " of " +
                      std::to_string(record_count));
  }
  if (rd.off != rd.n)
    return fail(StoreStatus::kMalformed, error,
                "checkpoint " + path + ": " +
                    std::to_string(rd.n - rd.off) +
                    " trailing bytes after the last record");
  // One record per set bit, ascending, each owned by this shard.
  if (record_count != data.done.count())
    return fail(StoreStatus::kMalformed, error,
                "checkpoint " + path + ": " + std::to_string(record_count) +
                    " records but " + std::to_string(data.done.count()) +
                    " completed bits");
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& rec : data.records) {
    if (rec.gslot >= total || (!first && rec.gslot <= prev) ||
        !data.done.test(rec.gslot) ||
        rec.gslot % static_cast<std::uint64_t>(data.identity.shard_count) !=
            static_cast<std::uint64_t>(data.identity.shard_index))
      return fail(StoreStatus::kMalformed, error,
                  "checkpoint " + path + ": record for slot " +
                      std::to_string(rec.gslot) +
                      " breaks the bitmap/shard invariants");
    prev = rec.gslot;
    first = false;
  }
  *out = std::move(data);
  if (error != nullptr) error->clear();
  return StoreStatus::kOk;
}

// ---- slot space -------------------------------------------------------------

std::size_t identity_total_slots(const CampaignIdentity& id) {
  const auto rpc = static_cast<std::size_t>(id.runs_per_class);
  if (static_cast<InjectionMode>(id.mode) == InjectionMode::kScripted)
    return active_classes(id.dim).size() * rpc;
  return rpc;
}

std::vector<std::uint64_t> shard_slots(const CampaignIdentity& id) {
  const std::uint64_t total = identity_total_slots(id);
  std::vector<std::uint64_t> slots;
  slots.reserve(static_cast<std::size_t>(
      total / static_cast<std::uint64_t>(id.shard_count) + 1));
  for (std::uint64_t g = static_cast<std::uint64_t>(id.shard_index); g < total;
       g += static_cast<std::uint64_t>(id.shard_count))
    slots.push_back(g);
  return slots;
}

const char* slot_class_name(const CampaignIdentity& id, std::uint64_t g) {
  if (static_cast<InjectionMode>(id.mode) != InjectionMode::kScripted)
    return "soak";
  const auto active = active_classes(id.dim);
  const auto c = static_cast<std::size_t>(
      g / static_cast<std::uint64_t>(id.runs_per_class));
  return c < active.size() ? to_string(active[c]) : "?";
}

// ---- aggregation ------------------------------------------------------------

namespace {

const SlotRecord* find_record(const std::vector<SlotRecord>& records,
                              std::uint64_t g) {
  auto it = std::lower_bound(
      records.begin(), records.end(), g,
      [](const SlotRecord& r, std::uint64_t key) { return r.gslot < key; });
  return it != records.end() && it->gslot == g ? &*it : nullptr;
}

}  // namespace

const SlotRecord* find_record(const CheckpointData& store, std::uint64_t g) {
  return find_record(store.records, g);
}

CampaignSummary summarize_slots(const CampaignConfig& cfg,
                                const CheckpointData& store) {
  const auto rpc = static_cast<std::uint64_t>(cfg.runs_per_class);
  CampaignSummary summary;
  std::uint64_t c = 0;
  for (FaultClass fclass : kAllFaultClasses) {
    ClassTally sft_tally;
    sft_tally.fclass = fclass;
    ClassTally snr_tally;
    snr_tally.fclass = fclass;
    if (cfg.dim < min_dim(fclass)) {
      sft_tally.dropped = cfg.runs_per_class;
      summary.sft.push_back(sft_tally);
      summary.snr.push_back(snr_tally);
      continue;
    }
    for (std::uint64_t slot = 0; slot < rpc; ++slot) {
      const SlotRecord* rec = find_record(store.records, c * rpc + slot);
      if (rec == nullptr) continue;  // another shard's, or not yet executed
      sft_tally.attempts += rec->attempts;
      if (!rec->exercised) {
        ++sft_tally.dropped;
        continue;
      }
      ++sft_tally.runs;
      classify_outcome(rec->outcome, sft_tally.detected, sft_tally.masked,
                       sft_tally.silent_wrong);
      if (rec->faults_fired > 1) ++sft_tally.multi_fired;
      ScenarioResult r;
      r.scenario = rec->scenario;
      r.outcome = rec->outcome;
      r.fault_exercised = true;
      r.first_detector = rec->first_detector;
      r.detection_stage = rec->detection_stage;
      r.faults_fired = rec->faults_fired;
      summary.runs.push_back(std::move(r));
      if (rec->snr_counted) {
        ++snr_tally.runs;
        classify_outcome(rec->snr_outcome, snr_tally.detected, snr_tally.masked,
                         snr_tally.silent_wrong);
      }
    }
    summary.sft.push_back(sft_tally);
    summary.snr.push_back(snr_tally);
    ++c;
  }
  summary.slots_total = shard_slots(store.identity).size();
  summary.slots_done = store.records.size();
  return summary;
}

SoakTally summarize_soak(const CampaignConfig& cfg,
                         const CheckpointData& store) {
  SoakTally tally;
  const std::uint64_t bound = cfg.dim >= 1
                                  ? static_cast<std::uint64_t>(cfg.dim - 1)
                                  : 0;
  for (std::uint64_t g : shard_slots(store.identity)) {
    const SlotRecord* rec = find_record(store.records, g);
    if (rec == nullptr) continue;
    tally.attempts += rec->attempts;
    if (!rec->exercised) {
      ++tally.dropped;
      continue;
    }
    ++tally.runs;
    tally.faults_fired += static_cast<long long>(rec->faults_fired);
    if (rec->faults_fired > 1) ++tally.multi_fired;
    const bool beyond = rec->faulty_nodes > bound;
    if (beyond) ++tally.beyond_bound_runs;
    switch (rec->outcome) {
      case sort::Outcome::kFailStop:
        ++tally.detected;
        break;
      case sort::Outcome::kCorrect:
        ++tally.masked;
        break;
      case sort::Outcome::kSilentWrong:
        if (beyond) {
          ++tally.silent_wrong_beyond;
          tally.max_dislocation =
              std::max(tally.max_dislocation, rec->dislocation);
        } else {
          ++tally.silent_wrong_in_bound;
        }
        break;
    }
  }
  tally.slots_total = shard_slots(store.identity).size();
  tally.slots_done = store.records.size();
  return tally;
}

StoreStatus merge_checkpoints(const std::vector<CheckpointData>& parts,
                              CheckpointData* out, std::string* error) {
  if (parts.empty())
    return fail(StoreStatus::kMalformed, error, "merge: no shard checkpoints");
  const auto& first = parts.front().identity;
  std::vector<bool> seen(static_cast<std::size_t>(first.shard_count), false);
  for (const auto& part : parts) {
    const auto& id = part.identity;
    if (!id.same_campaign(first))
      return fail(StoreStatus::kIdentityMismatch, error,
                  "merge: shard " + std::to_string(id.shard_index) +
                      " describes a different campaign than shard " +
                      std::to_string(first.shard_index));
    if (id.shard_count != first.shard_count)
      return fail(StoreStatus::kIdentityMismatch, error,
                  "merge: shard counts disagree (" +
                      std::to_string(id.shard_count) + " vs " +
                      std::to_string(first.shard_count) + ")");
    if (seen[static_cast<std::size_t>(id.shard_index)])
      return fail(StoreStatus::kMalformed, error,
                  "merge: shard " + std::to_string(id.shard_index) +
                      " appears twice");
    seen[static_cast<std::size_t>(id.shard_index)] = true;
    // load_checkpoint already enforced the residue invariant per part.
  }

  CheckpointData merged;
  merged.identity = first;
  merged.identity.shard_index = 0;
  merged.identity.shard_count = 1;  // the merged artifact covers the whole space
  merged.done = util::BitVec(identity_total_slots(merged.identity));
  for (const auto& part : parts) {
    for (const auto& rec : part.records) {
      if (merged.done.test(rec.gslot))
        return fail(StoreStatus::kMalformed, error,
                    "merge: slot " + std::to_string(rec.gslot) +
                        " present in two shards");
      merged.done.set(rec.gslot);
      merged.records.push_back(rec);
    }
  }
  std::sort(merged.records.begin(), merged.records.end(),
            [](const SlotRecord& a, const SlotRecord& b) {
              return a.gslot < b.gslot;
            });
  *out = std::move(merged);
  if (error != nullptr) error->clear();
  return StoreStatus::kOk;
}

// ---- streaming --------------------------------------------------------------

std::string stream_header(const CampaignIdentity& id) {
  std::string line = "{\"schema\":";
  line += obs::json::escape(kCampaignStreamSchema);
  line += ",\"dim\":" + std::to_string(id.dim);
  line += ",\"block\":" + std::to_string(id.block);
  line += ",\"runs_per_class\":" + std::to_string(id.runs_per_class);
  line += ",\"seed\":" + std::to_string(id.seed);
  line += ",\"mode\":";
  line += obs::json::escape(to_string(static_cast<InjectionMode>(id.mode)));
  line += ",\"p\":" + obs::json::shortest_double(std::bit_cast<double>(id.p_bits));
  line += ",\"k\":" + std::to_string(id.k);
  line += ",\"checks\":" + std::to_string(id.checks);
  line += ",\"transport\":";
  line += obs::json::escape(
      transport::to_string(static_cast<transport::Backend>(id.transport)));
  line += ",\"shard\":\"" + std::to_string(id.shard_index) + "/" +
          std::to_string(id.shard_count) + "\"";
  line += ",\"total_slots\":" + std::to_string(identity_total_slots(id));
  line += "}\n";
  return line;
}

std::string stream_line(const CampaignIdentity& id, const SlotRecord& rec) {
  const auto rpc = static_cast<std::uint64_t>(id.runs_per_class);
  const bool scripted =
      static_cast<InjectionMode>(id.mode) == InjectionMode::kScripted;
  std::string line = "{\"g\":" + std::to_string(rec.gslot);
  line += ",\"class\":";
  line += obs::json::escape(slot_class_name(id, rec.gslot));
  line += ",\"slot\":" + std::to_string(scripted ? rec.gslot % rpc : rec.gslot);
  line += ",\"attempts\":" + std::to_string(rec.attempts);
  line += ",\"dropped\":";
  line += rec.exercised ? "false" : "true";
  line += ",\"exercised\":";
  line += rec.exercised ? "true" : "false";
  if (rec.exercised) {
    line += ",\"outcome\":";
    line += obs::json::escape(to_string(rec.outcome));
    if (rec.outcome == sort::Outcome::kFailStop) {
      line += ",\"detector\":";
      line += obs::json::escape(to_string(rec.first_detector));
      line += ",\"stage\":" + std::to_string(rec.detection_stage);
    } else {
      line += ",\"detector\":null,\"stage\":null";
    }
    line += ",\"snr\":";
    if (rec.snr_counted)
      line += obs::json::escape(to_string(rec.snr_outcome));
    else
      line += "null";
  } else {
    // Redraw exhaustion: the slot consumed its whole budget without landing
    // an injection — surfaced per record, not only in the tally.
    line += ",\"outcome\":null,\"detector\":null,\"stage\":null,\"snr\":null";
  }
  line += ",\"fired\":" + std::to_string(rec.faults_fired);
  line += ",\"faulty_nodes\":" + std::to_string(rec.faulty_nodes);
  line += ",\"dislocation\":" + std::to_string(rec.dislocation);
  line += "}\n";
  return line;
}

bool SlotStream::open(const std::string& path, const std::string& header,
                      const std::vector<std::string>& prefix, bool resume,
                      std::string* error) {
  if (resume) {
    std::string existing;
    if (util::read_file(path, &existing, nullptr) &&
        existing.compare(0, header.size(), header) != 0) {
      if (error != nullptr)
        *error = "stream " + path +
                 ": existing file's header does not match this campaign";
      return false;
    }
  }
  std::string contents = header;
  for (const auto& line : prefix) contents += line;
  if (!util::write_file_atomic(path, contents, error)) return false;
  path_ = path;
  emitted_ = prefix.size();
  return true;
}

bool SlotStream::append(const std::string& line, std::string* error) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    if (error != nullptr) *error = "stream " + path_ + ": cannot open for append";
    return false;
  }
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    if (error != nullptr) *error = "stream " + path_ + ": short write";
    return false;
  }
  ++emitted_;
  return true;
}

}  // namespace aoft::fault
