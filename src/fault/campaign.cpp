#include "fault/campaign.h"

#include <cassert>
#include <iterator>

#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft::fault {

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptData: return "corrupt-data";
    case FaultClass::kCorruptGossip: return "corrupt-gossip";
    case FaultClass::kTwoFacedGossip: return "two-faced-gossip";
    case FaultClass::kRelayTamper: return "relay-tamper";
    case FaultClass::kDropMessage: return "drop-message";
    case FaultClass::kDeadLink: return "dead-link";
    case FaultClass::kGarbleLbs: return "garble-lbs";
    case FaultClass::kReplayStale: return "replay-stale";
    case FaultClass::kHaltNode: return "halt-node";
    case FaultClass::kInvertDirection: return "invert-direction";
    case FaultClass::kSubstituteValue: return "substitute-value";
  }
  return "?";
}

Scenario draw_scenario(FaultClass fclass, const CampaignConfig& cfg,
                       util::Rng& rng) {
  const int n = cfg.dim;
  const auto num_nodes = cube::NodeId{1} << n;
  Scenario s;
  s.fclass = fclass;
  s.dim = n;
  s.block = cfg.block;
  s.faulty = static_cast<cube::NodeId>(rng.next_below(num_nodes));
  // Environmental assumption 5: nodes are sane through the first message
  // exchange, so the earliest injection point is after stage 0 begins; value
  // substitution additionally requires a *validated* previous stage, and a
  // stale replay needs at least two same-window messages after its point.
  const int min_stage = fclass == FaultClass::kSubstituteValue ||
                                fclass == FaultClass::kReplayStale
                            ? 1
                            : 0;
  s.point.stage =
      min_stage + static_cast<int>(rng.next_below(
                      static_cast<std::uint64_t>(n - min_stage)));
  if (fclass == FaultClass::kReplayStale)
    s.point.iter = 1 + static_cast<int>(
                           rng.next_below(static_cast<std::uint64_t>(s.point.stage)));
  else
    s.point.iter = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(s.point.stage + 1)));
  s.delta = rng.next_in(1, 1 << 20) * (rng.next_bool() ? 1 : -1);
  s.input_seed = rng.next_u64();
  // Auxiliary node: a member of the stage window other than the faulty node
  // (relay victim), or an arbitrary neighbor (dead link destination).
  if (fclass == FaultClass::kRelayTamper) {
    const cube::NodeId flip = static_cast<cube::NodeId>(
        1 + rng.next_below((cube::NodeId{1} << (s.point.stage + 1)) - 1));
    s.aux_node = s.faulty ^ flip;
  } else {
    s.aux_node =
        s.faulty ^ (cube::NodeId{1} << rng.next_below(static_cast<std::uint64_t>(n)));
  }
  return s;
}

namespace {

// Build (adversary, node-fault map) realizing the scenario.
void instantiate(const Scenario& s, Adversary& adversary, NodeFaultMap& nf) {
  switch (s.fclass) {
    case FaultClass::kCorruptData:
      adversary.add(corrupt_data(s.faulty, s.point, s.delta));
      break;
    case FaultClass::kCorruptGossip:
      adversary.add(
          corrupt_gossip_entry(s.faulty, s.point, s.faulty, s.delta, s.block));
      break;
    case FaultClass::kTwoFacedGossip:
      adversary.add(two_faced_gossip(
          s.faulty, s.point, s.faulty, s.delta, s.block,
          [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
      break;
    case FaultClass::kRelayTamper:
      adversary.add(
          corrupt_gossip_entry(s.faulty, s.point, s.aux_node, s.delta, s.block));
      break;
    case FaultClass::kDropMessage:
      adversary.add(drop_message(s.faulty, s.point));
      break;
    case FaultClass::kDeadLink:
      adversary.add(dead_link(s.faulty, s.aux_node, s.point));
      break;
    case FaultClass::kGarbleLbs:
      adversary.add(garble_lbs(s.faulty, s.point, s.input_seed ^ 0xabcdefULL));
      break;
    case FaultClass::kReplayStale:
      adversary.add(replay_stale_lbs(s.faulty, s.point));
      break;
    case FaultClass::kHaltNode:
      nf[s.faulty].halt_at = s.point;
      break;
    case FaultClass::kInvertDirection:
      nf[s.faulty].invert_direction_from = s.point;
      break;
    case FaultClass::kSubstituteValue:
      nf[s.faulty].substitute_at = s.point;
      nf[s.faulty].substitute_value = 3000000000LL + s.delta;
      break;
  }
}

bool is_link_class(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptData:
    case FaultClass::kCorruptGossip:
    case FaultClass::kTwoFacedGossip:
    case FaultClass::kRelayTamper:
    case FaultClass::kDropMessage:
    case FaultClass::kDeadLink:
    case FaultClass::kGarbleLbs:
    case FaultClass::kReplayStale:
      return true;
    default:
      return false;
  }
}

// Gossip-targeting classes touch fields S_NR does not transmit.
bool applies_to_snr(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptGossip:
    case FaultClass::kTwoFacedGossip:
    case FaultClass::kRelayTamper:
    case FaultClass::kGarbleLbs:
    case FaultClass::kReplayStale:
      return false;
    default:
      return true;
  }
}

ScenarioResult finish_result(const Scenario& s, const sort::SortRun& run,
                             std::span<const sim::Key> input, bool exercised) {
  ScenarioResult r;
  r.scenario = s;
  r.outcome = sort::classify(run, input);
  r.fault_exercised = exercised;
  if (!run.errors.empty()) {
    r.first_detector = run.errors.front().source;
    r.detection_stage = run.errors.front().stage;
  }
  return r;
}

}  // namespace

ScenarioResult run_scenario_sft(const Scenario& s, const CampaignConfig& cfg) {
  auto input = util::random_keys(
      s.input_seed, (std::size_t{1} << s.dim) * s.block);
  Adversary adversary;
  sort::SftOptions opts;
  opts.block = s.block;
  opts.check_progress = cfg.check_progress;
  opts.check_feasibility = cfg.check_feasibility;
  opts.check_consistency = cfg.check_consistency;
  opts.check_exchange = cfg.check_exchange;
  instantiate(s, adversary, opts.node_faults);
  if (is_link_class(s.fclass)) opts.interceptor = &adversary;
  auto run = sort::run_sft(s.dim, input, opts);
  const bool exercised =
      is_link_class(s.fclass) ? adversary.touched() > 0 : !opts.node_faults.empty();
  return finish_result(s, run, input, exercised);
}

ScenarioResult run_scenario_snr(const Scenario& s, const CampaignConfig& cfg) {
  auto input = util::random_keys(
      s.input_seed, (std::size_t{1} << s.dim) * s.block);
  Adversary adversary;
  sort::SnrOptions opts;
  opts.block = s.block;
  NodeFaultMap nf;
  instantiate(s, adversary, nf);
  opts.node_faults = std::move(nf);
  if (is_link_class(s.fclass)) opts.interceptor = &adversary;
  (void)cfg;
  auto run = sort::run_snr(s.dim, input, opts);
  const bool exercised =
      is_link_class(s.fclass) ? adversary.touched() > 0 : !opts.node_faults.empty();
  return finish_result(s, run, input, exercised);
}

MultiScenario draw_multi_scenario(int k, const CampaignConfig& cfg,
                                  util::Rng& rng) {
  MultiScenario ms;
  ms.dim = cfg.dim;
  ms.block = cfg.block;
  ms.input_seed = rng.next_u64();
  std::vector<bool> used(std::size_t{1} << cfg.dim, false);
  while (static_cast<int>(ms.faults.size()) < k) {
    const auto fclass =
        kAllFaultClasses[rng.next_below(std::size(kAllFaultClasses))];
    Scenario s = draw_scenario(fclass, cfg, rng);
    if (used[s.faulty]) continue;  // distinct faulty nodes
    used[s.faulty] = true;
    s.input_seed = ms.input_seed;  // one shared input per multi-run
    ms.faults.push_back(std::move(s));
  }
  return ms;
}

MultiResult run_multi_scenario_sft(const MultiScenario& ms,
                                   const CampaignConfig& cfg) {
  auto input = util::random_keys(ms.input_seed,
                                 (std::size_t{1} << ms.dim) * ms.block);
  Adversary adversary;
  sort::SftOptions opts;
  opts.block = ms.block;
  opts.check_progress = cfg.check_progress;
  opts.check_feasibility = cfg.check_feasibility;
  opts.check_consistency = cfg.check_consistency;
  opts.check_exchange = cfg.check_exchange;
  bool any_node_fault = false;
  bool any_link_fault = false;
  for (const auto& s : ms.faults) {
    instantiate(s, adversary, opts.node_faults);
    any_node_fault |= !is_link_class(s.fclass);
    any_link_fault |= is_link_class(s.fclass);
  }
  if (any_link_fault) opts.interceptor = &adversary;
  auto run = sort::run_sft(ms.dim, input, opts);

  MultiResult r;
  r.outcome = sort::classify(run, input);
  r.fault_exercised = any_node_fault || adversary.touched() > 0;
  if (!run.errors.empty()) r.detection_stage = run.errors.front().stage;
  return r;
}

std::vector<MultiTally> run_multi_campaign(const CampaignConfig& cfg, int max_k) {
  std::vector<MultiTally> tallies;
  util::Rng rng(cfg.seed ^ 0x6d756c7469ULL);  // "multi"
  for (int k = 1; k <= max_k; ++k) {
    MultiTally tally;
    tally.k = k;
    int attempts = 0;
    while (tally.runs < cfg.runs_per_class && attempts < cfg.runs_per_class * 10) {
      ++attempts;
      const auto ms = draw_multi_scenario(k, cfg, rng);
      const auto r = run_multi_scenario_sft(ms, cfg);
      if (!r.fault_exercised) continue;
      ++tally.runs;
      switch (r.outcome) {
        case sort::Outcome::kFailStop: ++tally.detected; break;
        case sort::Outcome::kCorrect: ++tally.masked; break;
        case sort::Outcome::kSilentWrong: ++tally.silent_wrong; break;
      }
    }
    tallies.push_back(tally);
  }
  return tallies;
}

CampaignSummary run_campaign(const CampaignConfig& cfg) {
  CampaignSummary summary;
  util::Rng rng(cfg.seed);
  for (FaultClass fclass : kAllFaultClasses) {
    ClassTally sft_tally{fclass, 0, 0, 0, 0};
    ClassTally snr_tally{fclass, 0, 0, 0, 0};
    int attempts = 0;
    while (sft_tally.runs < cfg.runs_per_class &&
           attempts < cfg.runs_per_class * 10) {
      ++attempts;
      const Scenario s = draw_scenario(fclass, cfg, rng);
      auto r = run_scenario_sft(s, cfg);
      if (!r.fault_exercised) continue;  // injection point never reached
      ++sft_tally.runs;
      switch (r.outcome) {
        case sort::Outcome::kFailStop: ++sft_tally.detected; break;
        case sort::Outcome::kCorrect: ++sft_tally.masked; break;
        case sort::Outcome::kSilentWrong: ++sft_tally.silent_wrong; break;
      }
      summary.runs.push_back(std::move(r));

      if (applies_to_snr(fclass)) {
        auto b = run_scenario_snr(s, cfg);
        if (b.fault_exercised) {
          ++snr_tally.runs;
          switch (b.outcome) {
            case sort::Outcome::kFailStop: ++snr_tally.detected; break;
            case sort::Outcome::kCorrect: ++snr_tally.masked; break;
            case sort::Outcome::kSilentWrong: ++snr_tally.silent_wrong; break;
          }
        }
      }
    }
    summary.sft.push_back(sft_tally);
    summary.snr.push_back(snr_tally);
  }
  return summary;
}

}  // namespace aoft::fault
