#include "fault/campaign.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>

#include "fault/campaign_store.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aoft::fault {

namespace {

// Campaigns read adversary.touched() after every attempt to drive the redraw
// loop; under the shm backend the interceptor fires inside a forked child, so
// the counter this process reads would always be zero and every slot would be
// "unexercised".  Refuse loudly instead of sweeping nothing.
void require_sim_backend(const CampaignConfig& cfg) {
  if (cfg.backend != transport::Backend::kSim)
    throw std::invalid_argument(
        "fault campaigns require the in-process sim backend (got \"" +
        std::string(transport::to_string(cfg.backend)) +
        "\"): injection-exercised accounting lives in the worker's address "
        "space");
}

}  // namespace

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptData: return "corrupt-data";
    case FaultClass::kCorruptGossip: return "corrupt-gossip";
    case FaultClass::kTwoFacedGossip: return "two-faced-gossip";
    case FaultClass::kRelayTamper: return "relay-tamper";
    case FaultClass::kDropMessage: return "drop-message";
    case FaultClass::kDeadLink: return "dead-link";
    case FaultClass::kGarbleLbs: return "garble-lbs";
    case FaultClass::kReplayStale: return "replay-stale";
    case FaultClass::kHaltNode: return "halt-node";
    case FaultClass::kInvertDirection: return "invert-direction";
    case FaultClass::kSubstituteValue: return "substitute-value";
  }
  return "?";
}

int min_dim(FaultClass c) {
  switch (c) {
    case FaultClass::kSubstituteValue:
    case FaultClass::kReplayStale:
      return 2;  // both need an injection stage >= 1, i.e. at least 2 stages
    default:
      return 1;  // every link/processor fault needs at least one link
  }
}

std::vector<FaultClass> active_classes(int dim) {
  std::vector<FaultClass> active;
  for (FaultClass fclass : kAllFaultClasses)
    if (dim >= min_dim(fclass)) active.push_back(fclass);
  return active;
}

Scenario draw_scenario(FaultClass fclass, const CampaignConfig& cfg,
                       util::Rng& rng) {
  const int n = cfg.dim;
  const auto num_nodes = cube::NodeId{1} << n;
  Scenario s;
  s.fclass = fclass;
  s.dim = n;
  s.block = cfg.block;
  s.faulty = static_cast<cube::NodeId>(rng.next_below(num_nodes));
  // Environmental assumption 5: nodes are sane through the first message
  // exchange, so the earliest injection point is after stage 0 begins; value
  // substitution additionally requires a *validated* previous stage, and a
  // stale replay needs at least two same-window messages after its point.
  // On cubes below min_dim(fclass) those constraints are unsatisfiable;
  // clamp the stage window to [0, max(n-1, 0)] so the draw stays defined
  // (next_below requires a nonzero bound) instead of dividing by zero.
  int min_stage = fclass == FaultClass::kSubstituteValue ||
                          fclass == FaultClass::kReplayStale
                      ? 1
                      : 0;
  min_stage = std::min(min_stage, std::max(n - 1, 0));
  s.point.stage =
      min_stage +
      static_cast<int>(rng.next_below(
          std::max<std::uint64_t>(static_cast<std::uint64_t>(n - min_stage), 1)));
  if (fclass == FaultClass::kReplayStale && s.point.stage > 0)
    s.point.iter = 1 + static_cast<int>(
                           rng.next_below(static_cast<std::uint64_t>(s.point.stage)));
  else
    s.point.iter = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(s.point.stage + 1)));
  s.delta = rng.next_in(1, 1 << 20) * (rng.next_bool() ? 1 : -1);
  s.input_seed = rng.next_u64();
  // Auxiliary node: a member of the stage window other than the faulty node
  // (relay victim), or an arbitrary neighbor (dead link destination).
  if (fclass == FaultClass::kRelayTamper) {
    const cube::NodeId flip = static_cast<cube::NodeId>(
        1 + rng.next_below((cube::NodeId{1} << (s.point.stage + 1)) - 1));
    s.aux_node = s.faulty ^ flip;
  } else {
    s.aux_node =
        s.faulty ^ (cube::NodeId{1} << rng.next_below(
                        std::max<std::uint64_t>(static_cast<std::uint64_t>(n), 1)));
  }
  return s;
}

namespace {

// Build (adversary, node-fault map) realizing the scenario.
void instantiate(const Scenario& s, Adversary& adversary, NodeFaultMap& nf) {
  switch (s.fclass) {
    case FaultClass::kCorruptData:
      adversary.add(corrupt_data(s.faulty, s.point, s.delta));
      break;
    case FaultClass::kCorruptGossip:
      adversary.add(
          corrupt_gossip_entry(s.faulty, s.point, s.faulty, s.delta, s.block));
      break;
    case FaultClass::kTwoFacedGossip:
      adversary.add(two_faced_gossip(
          s.faulty, s.point, s.faulty, s.delta, s.block,
          [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
      break;
    case FaultClass::kRelayTamper:
      adversary.add(
          corrupt_gossip_entry(s.faulty, s.point, s.aux_node, s.delta, s.block));
      break;
    case FaultClass::kDropMessage:
      adversary.add(drop_message(s.faulty, s.point));
      break;
    case FaultClass::kDeadLink:
      adversary.add(dead_link(s.faulty, s.aux_node, s.point));
      break;
    case FaultClass::kGarbleLbs:
      adversary.add(garble_lbs(s.faulty, s.point, s.input_seed ^ 0xabcdefULL));
      break;
    case FaultClass::kReplayStale:
      adversary.add(replay_stale_lbs(s.faulty, s.point));
      break;
    case FaultClass::kHaltNode:
      nf[s.faulty].halt_at = s.point;
      break;
    case FaultClass::kInvertDirection:
      nf[s.faulty].invert_direction_from = s.point;
      break;
    case FaultClass::kSubstituteValue:
      nf[s.faulty].substitute_at = s.point;
      nf[s.faulty].substitute_value = 3000000000LL + s.delta;
      break;
  }
}

bool is_link_class(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptData:
    case FaultClass::kCorruptGossip:
    case FaultClass::kTwoFacedGossip:
    case FaultClass::kRelayTamper:
    case FaultClass::kDropMessage:
    case FaultClass::kDeadLink:
    case FaultClass::kGarbleLbs:
    case FaultClass::kReplayStale:
      return true;
    default:
      return false;
  }
}

// Gossip-targeting classes touch fields S_NR does not transmit.
bool applies_to_snr(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptGossip:
    case FaultClass::kTwoFacedGossip:
    case FaultClass::kRelayTamper:
    case FaultClass::kGarbleLbs:
    case FaultClass::kReplayStale:
      return false;
    default:
      return true;
  }
}

ScenarioResult finish_result(const Scenario& s, const sort::SortRun& run,
                             std::span<const sim::Key> input, bool exercised,
                             std::uint64_t fired) {
  ScenarioResult r;
  r.scenario = s;
  r.outcome = sort::classify(run, input);
  r.fault_exercised = exercised;
  r.faults_fired = fired;
  if (!run.errors.empty()) {
    r.first_detector = run.errors.front().source;
    r.detection_stage = run.errors.front().stage;
  }
  return r;
}

// ---- slot engine ------------------------------------------------------------
//
// One slot = one requested exercised run.  All randomness for (stream, slot,
// attempt) comes from util::derive_seed, so slots are independent pure
// functions of the campaign seed: phase 1 pre-draws attempt-0 scenarios
// serially (cheap, and keeps draw_scenario's contract single-threaded),
// phase 2 executes slots across the pool (redraws derive later attempt
// sub-seeds in-worker), and aggregation walks slots in order.

// Seed streams: single-fault classes use their enum value, multi-fault
// campaigns use a disjoint range keyed by k.
std::uint64_t class_stream(FaultClass c) {
  return static_cast<std::uint64_t>(c);
}
std::uint64_t multi_stream(int k) {
  return 0x100u + static_cast<std::uint64_t>(k);
}

struct SlotOutcome {
  std::optional<ScenarioResult> sft;  // engaged iff some attempt exercised
  int attempts = 0;                   // scenario executions consumed
  bool snr_counted = false;
  sort::Outcome snr_outcome{};
  // Per-slot observability collection (merged in slot order by phase 3).
  obs::Tracer trace;
  obs::MetricsRegistry metrics;
};

Scenario draw_slot_attempt(FaultClass fclass, const CampaignConfig& cfg,
                           std::size_t slot, int attempt) {
  util::Rng rng(
      util::derive_seed(cfg.seed, class_stream(fclass), slot,
                        static_cast<std::uint64_t>(attempt)));
  return draw_scenario(fclass, cfg, rng);
}

SlotOutcome run_slot(FaultClass fclass, const CampaignConfig& cfg,
                     std::size_t slot, const Scenario& first_draw) {
  SlotOutcome out;
  // Bind this slot's private sinks to the executing worker thread (and shadow
  // any ambient sink, so inline jobs == 1 runs collect identically).
  obs::ScopedSink bind(cfg.tracer != nullptr ? &out.trace : nullptr,
                       cfg.metrics != nullptr ? &out.metrics : nullptr);
  for (int attempt = 0; attempt < kMaxSlotAttempts; ++attempt) {
    const Scenario s = attempt == 0
                           ? first_draw
                           : draw_slot_attempt(fclass, cfg, slot, attempt);
    ++out.attempts;
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kScenario, obs::kGlobal, -1, -1, 0.0,
                  static_cast<std::int64_t>(slot), attempt,
                  to_string(fclass));
    if (auto* me = obs::metrics()) me->inc(obs::Counter::kScenarios);
    auto r = run_scenario_sft(s, cfg);
    if (!r.fault_exercised) continue;  // injection point never reached
    out.sft = std::move(r);
    if (applies_to_snr(fclass)) {
      const auto b = run_scenario_snr(s, cfg);
      if (b.fault_exercised) {
        out.snr_counted = true;
        out.snr_outcome = b.outcome;
      }
    }
    break;
  }
  return out;
}

// One simulated Machine per worker thread, rebuilt only when the cube
// dimension changes and reset() between scenarios (the sort resets it with
// the run's own cost model).  Machine::reset makes the machine observably
// identical to a fresh one, so leasing never shows in results or traces —
// it only removes the per-scenario construction and teardown of 2^dim
// channel/context sets from the hot path.  Returns nullptr when reuse is
// disabled, which makes the sorts fall back to a machine per run.
sim::Machine* lease_machine(int dim, bool reuse) {
  if (!reuse) return nullptr;
  thread_local std::unique_ptr<sim::Machine> machine;
  thread_local int machine_dim = -1;
  if (machine_dim != dim) {
    machine = std::make_unique<sim::Machine>(cube::Topology{dim},
                                             sim::CostModel{});
    machine_dim = dim;
  }
  return machine.get();
}

// Run body(i) for i in [0, count): inline when jobs == 1, across a pool
// otherwise.  Bodies write into disjoint slots of pre-sized vectors, so the
// execution order never shows in the output.  cfg.placement decides where
// pool workers run; the pin plan (a pure function of policy, topology and
// worker count — never a runtime sched_getcpu sample) is recorded into the
// campaign-level tracer/metrics as environment metadata before any slot
// trace is appended.
void for_each_slot(const CampaignConfig& cfg, std::size_t count,
                   const std::function<void(std::size_t)>& body) {
  const int n = util::ThreadPool::resolve(cfg.jobs);
  if (n <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<util::WorkerPin> pins;
  if (cfg.placement.kind != util::Placement::kNone) {
    pins = util::plan_placement(cfg.placement,
                                util::HostTopology::discover(), n);
    for (const auto& pin : pins) {
      if (cfg.tracer != nullptr) {
        cfg.tracer->instant(obs::Ev::kWorkerCpu, obs::kGlobal, -1, -1, 0.0,
                            pin.worker, pin.cpu, cfg.placement.str());
        cfg.tracer->instant(obs::Ev::kWorkerNode, obs::kGlobal, -1, -1, 0.0,
                            pin.worker, pin.node);
      }
      if (cfg.metrics != nullptr && pin.cpu >= 0)
        cfg.metrics->inc(obs::Counter::kWorkersPinned);
    }
  }
  util::ThreadPool pool(n, std::move(pins));
  pool.parallel_for(count, body,
                    static_cast<std::size_t>(std::max(1, cfg.scenario_batch)));
}

// ---- durable-session plumbing (campaign_store.h) ----------------------------
//
// Shared by the scripted and soak engines.  A session owns the in-memory
// CheckpointData, the ordered slot stream, and the list of slots this process
// still has to execute.  Workers commit completed slots through one mutex;
// the checkpoint is re-saved crash-safely every cfg.checkpoint_every commits,
// and the stream cursor advances over every done-in-order slot.  Nothing here
// affects results: records are keyed by global slot, so the final artifacts
// are pure functions of the campaign identity regardless of jobs, placement,
// shard layout or how many times the process was killed and resumed.

struct StoreSession {
  CampaignIdentity id;
  CheckpointData data;
  SlotStream stream;
  std::vector<std::uint64_t> shard;    // ascending slots owned by this shard
  std::vector<std::uint64_t> pending;  // shard slots left to execute
  std::size_t cursor = 0;              // next shard index to stream
  std::size_t since_save = 0;
  std::mutex mu;
};

void open_session(const CampaignConfig& cfg, StoreSession& ss) {
  ss.id = identity_of(cfg);
  ss.data.identity = ss.id;
  ss.data.done = util::BitVec(identity_total_slots(ss.id));
  ss.shard = shard_slots(ss.id);

  if (cfg.resume && !cfg.force_restart && !cfg.checkpoint_path.empty()) {
    CheckpointData loaded;
    std::string err;
    const StoreStatus status =
        load_checkpoint(cfg.checkpoint_path, &loaded, &err);
    if (status == StoreStatus::kOk) {
      if (!(loaded.identity == ss.id))
        throw StoreError(
            StoreStatus::kIdentityMismatch,
            "checkpoint " + cfg.checkpoint_path +
                ": belongs to a different campaign (dim/seed/mode/checks/"
                "shard differ); use --resume=force-restart to discard it");
      ss.data = std::move(loaded);
    } else if (status != StoreStatus::kMissing) {
      // A missing checkpoint is a fresh start; anything else is loud.
      throw StoreError(status,
                       err + " [" + std::string(to_string(status)) +
                           "]; use --resume=force-restart to discard it");
    }
  }

  // Split the shard into the already-completed in-order prefix (re-emitted
  // into the stream from checkpoint records) and the pending remainder.
  std::vector<std::string> prefix;
  bool in_prefix = true;
  for (std::uint64_t g : ss.shard) {
    if (ss.data.done.test(g)) {
      if (in_prefix) {
        prefix.push_back(stream_line(ss.id, *find_record(ss.data, g)));
        ++ss.cursor;
      }
    } else {
      in_prefix = false;
      ss.pending.push_back(g);
    }
  }

  if (!cfg.stream_path.empty()) {
    std::string err;
    if (!ss.stream.open(cfg.stream_path, stream_header(ss.id), prefix,
                        cfg.resume && !cfg.force_restart, &err))
      throw StoreError(StoreStatus::kIdentityMismatch, err);
  }

  // Kill-point simulation: execute only the first pending slots, in order,
  // so the stream prefix stays gap-free.
  if (cfg.stop_after_slots > 0 &&
      ss.pending.size() > static_cast<std::size_t>(cfg.stop_after_slots))
    ss.pending.resize(static_cast<std::size_t>(cfg.stop_after_slots));
}

// Record one completed slot: insert its record, maybe checkpoint, advance
// the stream cursor over every newly in-order done slot.
void commit_slot(const CampaignConfig& cfg, StoreSession& ss, SlotRecord rec) {
  std::lock_guard<std::mutex> lock(ss.mu);
  const std::uint64_t g = rec.gslot;
  auto it = std::lower_bound(
      ss.data.records.begin(), ss.data.records.end(), g,
      [](const SlotRecord& r, std::uint64_t key) { return r.gslot < key; });
  ss.data.records.insert(it, std::move(rec));
  ss.data.done.set(g);
  ++ss.since_save;
  if (!cfg.checkpoint_path.empty() &&
      ss.since_save >= static_cast<std::size_t>(std::max(1, cfg.checkpoint_every))) {
    std::string err;
    if (!save_checkpoint(cfg.checkpoint_path, ss.data, &err))
      throw StoreError(StoreStatus::kMalformed, err);
    ss.since_save = 0;
  }
  if (ss.stream.active()) {
    while (ss.cursor < ss.shard.size() &&
           ss.data.done.test(ss.shard[ss.cursor])) {
      std::string err;
      if (!ss.stream.append(
              stream_line(ss.id, *find_record(ss.data, ss.shard[ss.cursor])),
              &err))
        throw StoreError(StoreStatus::kMalformed, err);
      ++ss.cursor;
    }
  }
}

// Final save after the pool drains, so a clean exit never leaves the
// checkpoint a cadence behind the stream.
void close_session(const CampaignConfig& cfg, StoreSession& ss) {
  if (cfg.checkpoint_path.empty() || ss.since_save == 0) return;
  std::string err;
  if (!save_checkpoint(cfg.checkpoint_path, ss.data, &err))
    throw StoreError(StoreStatus::kMalformed, err);
  ss.since_save = 0;
}

}  // namespace

ScenarioResult run_scenario_sft(const Scenario& s, const CampaignConfig& cfg) {
  auto input = util::random_keys(
      s.input_seed, (std::size_t{1} << s.dim) * s.block);
  Adversary adversary;
  sort::SftOptions opts;
  opts.block = s.block;
  opts.check_progress = cfg.check_progress;
  opts.check_feasibility = cfg.check_feasibility;
  opts.check_consistency = cfg.check_consistency;
  opts.check_exchange = cfg.check_exchange;
  instantiate(s, adversary, opts.node_faults);
  if (is_link_class(s.fclass)) opts.interceptor = &adversary;
  opts.machine = lease_machine(s.dim, cfg.reuse_machines);
  auto run = sort::run_sft(s.dim, input, opts);
  const bool exercised =
      is_link_class(s.fclass) ? adversary.touched() > 0 : !opts.node_faults.empty();
  const std::uint64_t fired =
      is_link_class(s.fclass) ? adversary.touched() : (exercised ? 1 : 0);
  return finish_result(s, run, input, exercised, fired);
}

ScenarioResult run_scenario_snr(const Scenario& s, const CampaignConfig& cfg) {
  auto input = util::random_keys(
      s.input_seed, (std::size_t{1} << s.dim) * s.block);
  Adversary adversary;
  sort::SnrOptions opts;
  opts.block = s.block;
  NodeFaultMap nf;
  instantiate(s, adversary, nf);
  opts.node_faults = std::move(nf);
  if (is_link_class(s.fclass)) opts.interceptor = &adversary;
  opts.machine = lease_machine(s.dim, cfg.reuse_machines);
  auto run = sort::run_snr(s.dim, input, opts);
  const bool exercised =
      is_link_class(s.fclass) ? adversary.touched() > 0 : !opts.node_faults.empty();
  const std::uint64_t fired =
      is_link_class(s.fclass) ? adversary.touched() : (exercised ? 1 : 0);
  return finish_result(s, run, input, exercised, fired);
}

MultiScenario draw_multi_scenario(int k, const CampaignConfig& cfg,
                                  util::Rng& rng) {
  MultiScenario ms;
  ms.dim = cfg.dim;
  ms.block = cfg.block;
  ms.input_seed = rng.next_u64();
  std::vector<bool> used(std::size_t{1} << cfg.dim, false);
  while (static_cast<int>(ms.faults.size()) < k) {
    const auto fclass =
        kAllFaultClasses[rng.next_below(std::size(kAllFaultClasses))];
    Scenario s = draw_scenario(fclass, cfg, rng);
    if (used[s.faulty]) continue;  // distinct faulty nodes
    used[s.faulty] = true;
    s.input_seed = ms.input_seed;  // one shared input per multi-run
    ms.faults.push_back(std::move(s));
  }
  return ms;
}

MultiResult run_multi_scenario_sft(const MultiScenario& ms,
                                   const CampaignConfig& cfg) {
  auto input = util::random_keys(ms.input_seed,
                                 (std::size_t{1} << ms.dim) * ms.block);
  Adversary adversary;
  sort::SftOptions opts;
  opts.block = ms.block;
  opts.check_progress = cfg.check_progress;
  opts.check_feasibility = cfg.check_feasibility;
  opts.check_consistency = cfg.check_consistency;
  opts.check_exchange = cfg.check_exchange;
  bool any_node_fault = false;
  bool any_link_fault = false;
  for (const auto& s : ms.faults) {
    instantiate(s, adversary, opts.node_faults);
    any_node_fault |= !is_link_class(s.fclass);
    any_link_fault |= is_link_class(s.fclass);
  }
  if (any_link_fault) opts.interceptor = &adversary;
  opts.machine = lease_machine(ms.dim, cfg.reuse_machines);
  auto run = sort::run_sft(ms.dim, input, opts);

  MultiResult r;
  r.outcome = sort::classify(run, input);
  r.fault_exercised = any_node_fault || adversary.touched() > 0;
  if (!run.errors.empty()) r.detection_stage = run.errors.front().stage;
  return r;
}

std::vector<MultiTally> run_multi_campaign(const CampaignConfig& cfg, int max_k) {
  require_sim_backend(cfg);
  const auto slots_per_k = static_cast<std::size_t>(cfg.runs_per_class);

  struct MultiSlotOutcome {
    std::optional<MultiResult> result;  // engaged iff exercised
    int attempts = 0;
    obs::Tracer trace;
    obs::MetricsRegistry metrics;
  };

  // Phase 1: pre-draw attempt-0 multi-scenarios serially.
  std::vector<MultiScenario> first_draws(static_cast<std::size_t>(max_k) *
                                         slots_per_k);
  for (int k = 1; k <= max_k; ++k)
    for (std::size_t slot = 0; slot < slots_per_k; ++slot) {
      util::Rng rng(util::derive_seed(cfg.seed, multi_stream(k), slot, 0));
      first_draws[static_cast<std::size_t>(k - 1) * slots_per_k + slot] =
          draw_multi_scenario(k, cfg, rng);
    }

  // Phase 2: execute every (k, slot) across the pool.
  std::vector<MultiSlotOutcome> outcomes(first_draws.size());
  for_each_slot(cfg, outcomes.size(), [&](std::size_t i) {
    const int k = static_cast<int>(i / slots_per_k) + 1;
    const std::size_t slot = i % slots_per_k;
    auto& out = outcomes[i];
    obs::ScopedSink bind(cfg.tracer != nullptr ? &out.trace : nullptr,
                         cfg.metrics != nullptr ? &out.metrics : nullptr);
    for (int attempt = 0; attempt < kMaxSlotAttempts; ++attempt) {
      MultiScenario ms;
      if (attempt == 0) {
        ms = first_draws[i];
      } else {
        util::Rng rng(util::derive_seed(
            cfg.seed, multi_stream(k), slot, static_cast<std::uint64_t>(attempt)));
        ms = draw_multi_scenario(k, cfg, rng);
      }
      ++out.attempts;
      if (auto* tr = obs::tracer())
        tr->instant(obs::Ev::kScenario, obs::kGlobal, -1, -1, 0.0,
                    static_cast<std::int64_t>(slot), attempt,
                    "multi-k" + std::to_string(k));
      if (auto* me = obs::metrics()) me->inc(obs::Counter::kScenarios);
      const auto r = run_multi_scenario_sft(ms, cfg);
      if (!r.fault_exercised) continue;
      out.result = r;
      break;
    }
  });

  // Phase 3: aggregate in (k, slot) order — identical for every job count.
  std::vector<MultiTally> tallies;
  for (int k = 1; k <= max_k; ++k) {
    MultiTally tally;
    tally.k = k;
    for (std::size_t slot = 0; slot < slots_per_k; ++slot) {
      auto& out =
          outcomes[static_cast<std::size_t>(k - 1) * slots_per_k + slot];
      if (cfg.tracer != nullptr) cfg.tracer->append(std::move(out.trace));
      if (cfg.metrics != nullptr) cfg.metrics->merge(out.metrics);
      tally.attempts += out.attempts;
      if (!out.result) {
        ++tally.dropped;
        continue;
      }
      ++tally.runs;
      switch (out.result->outcome) {
        case sort::Outcome::kFailStop: ++tally.detected; break;
        case sort::Outcome::kCorrect: ++tally.masked; break;
        case sort::Outcome::kSilentWrong: ++tally.silent_wrong; break;
      }
    }
    tallies.push_back(tally);
  }
  return tallies;
}

CampaignSummary run_campaign(const CampaignConfig& cfg) {
  require_sim_backend(cfg);
  const auto slots_per_class = static_cast<std::uint64_t>(cfg.runs_per_class);

  // Supported classes at this dimension; unsupported ones keep a zeroed
  // tally with every slot reported dropped rather than crashing the draw.
  const std::vector<FaultClass> active = active_classes(cfg.dim);

  // Phase 0: open the durable session — load/validate any checkpoint,
  // rebuild the stream prefix, compute the pending slot list.  A fresh
  // non-durable campaign degenerates to "every shard slot is pending".
  StoreSession ss;
  open_session(cfg, ss);

  // Phase 1: pre-draw attempt-0 scenarios for pending slots serially.
  std::vector<Scenario> first_draws(ss.pending.size());
  for (std::size_t i = 0; i < ss.pending.size(); ++i) {
    const std::uint64_t g = ss.pending[i];
    first_draws[i] = draw_slot_attempt(active[g / slots_per_class], cfg,
                                       g % slots_per_class, 0);
  }

  // Phase 2: execute every pending slot, possibly across the pool, and
  // commit each to the checkpoint/stream as it completes.
  std::vector<SlotOutcome> outcomes(ss.pending.size());
  for_each_slot(cfg, outcomes.size(), [&](std::size_t i) {
    const std::uint64_t g = ss.pending[i];
    const FaultClass fclass = active[g / slots_per_class];
    auto& out = outcomes[i];
    out = run_slot(fclass, cfg, g % slots_per_class, first_draws[i]);
    SlotRecord rec;
    rec.gslot = g;
    rec.attempts = out.attempts;
    rec.exercised = out.sft.has_value();
    if (out.sft) {
      rec.scenario = out.sft->scenario;
      rec.outcome = out.sft->outcome;
      rec.first_detector = out.sft->first_detector;
      rec.detection_stage = out.sft->detection_stage;
      rec.snr_counted = out.snr_counted;
      rec.snr_outcome = out.snr_outcome;
      rec.faults_fired = out.sft->faults_fired;
      rec.faulty_nodes = 1;  // scripted scenarios have one faulty node
    }
    commit_slot(cfg, ss, std::move(rec));
  });
  close_session(cfg, ss);

  // Merge per-slot observability in ascending global-slot order (pending is
  // ascending, so this matches the old (class, slot) walk exactly).
  for (auto& out : outcomes) {
    if (cfg.tracer != nullptr) cfg.tracer->append(std::move(out.trace));
    if (cfg.metrics != nullptr) cfg.metrics->merge(out.metrics);
  }

  // Phase 3: aggregate from the records in (class, slot) order — identical
  // for every job count, shard layout and resume history.
  return summarize_slots(cfg, ss.data);
}

// ---- probabilistic soak campaigns -------------------------------------------

std::uint64_t max_dislocation(std::span<const sim::Key> output) {
  std::vector<std::size_t> idx(output.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return output[a] < output[b];
  });
  std::uint64_t worst = 0;
  for (std::size_t rank = 0; rank < idx.size(); ++rank) {
    const std::size_t from = idx[rank];
    worst = std::max(worst,
                     static_cast<std::uint64_t>(rank > from ? rank - from
                                                            : from - rank));
  }
  return worst;
}

namespace {

// Seed stream for soak slots: disjoint from the per-class and multi-fault
// ranges.
std::uint64_t soak_stream(InjectionMode mode) {
  return 0x200u + static_cast<std::uint64_t>(mode);
}

// One soak slot: redraw (input, delta, gate seed, victim) until an injection
// actually fires, up to the shared redraw budget.  Everything consumed comes
// from derive_seed(seed, soak_stream, slot, attempt) — pure per attempt.
SlotRecord run_soak_slot(const CampaignConfig& cfg, std::uint64_t g) {
  const auto num_nodes = std::size_t{1} << cfg.dim;
  SlotRecord rec;
  rec.gslot = g;
  for (int attempt = 0; attempt < kMaxSlotAttempts; ++attempt) {
    util::Rng rng(util::derive_seed(cfg.seed, soak_stream(cfg.injection.mode),
                                    g, static_cast<std::uint64_t>(attempt)));
    const std::uint64_t input_seed = rng.next_u64();
    const sim::Key delta = rng.next_in(1, 1 << 20) * (rng.next_bool() ? 1 : -1);
    const std::uint64_t gate_seed = rng.next_u64();
    const auto faulty = static_cast<cube::NodeId>(rng.next_below(num_nodes));
    ++rec.attempts;
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kScenario, obs::kGlobal, -1, -1, 0.0,
                  static_cast<std::int64_t>(g), attempt,
                  to_string(cfg.injection.mode));
    if (auto* me = obs::metrics()) me->inc(obs::Counter::kScenarios);

    ArrivalStats stats;
    stats.fired_nodes = util::BitVec(num_nodes);
    Adversary adversary;
    if (cfg.injection.mode == InjectionMode::kIndependent)
      adversary.add(
          independent_corrupt(cfg.injection.p, delta, gate_seed, &stats));
    else
      adversary.add(run_length_crash(faulty, cfg.injection.k, &stats));

    auto input = util::random_keys(input_seed, num_nodes * cfg.block);
    sort::SftOptions opts;
    opts.block = cfg.block;
    opts.check_progress = cfg.check_progress;
    opts.check_feasibility = cfg.check_feasibility;
    opts.check_consistency = cfg.check_consistency;
    opts.check_exchange = cfg.check_exchange;
    opts.interceptor = &adversary;
    opts.machine = lease_machine(cfg.dim, cfg.reuse_machines);
    auto run = sort::run_sft(cfg.dim, input, opts);
    if (stats.fired == 0) continue;  // no arrival this attempt; redraw

    rec.exercised = true;
    rec.outcome = sort::classify(run, input);
    if (!run.errors.empty()) {
      rec.first_detector = run.errors.front().source;
      rec.detection_stage = run.errors.front().stage;
    }
    rec.faults_fired = stats.fired;
    rec.faulty_nodes = static_cast<std::uint32_t>(stats.fired_nodes.count());
    rec.scenario.dim = cfg.dim;
    rec.scenario.block = cfg.block;
    rec.scenario.delta = delta;
    rec.scenario.input_seed = input_seed;
    if (cfg.injection.mode == InjectionMode::kRunLength)
      rec.scenario.faulty = faulty;
    if (rec.outcome == sort::Outcome::kSilentWrong)
      rec.dislocation = max_dislocation(run.output);
    break;
  }
  return rec;
}

}  // namespace

SoakTally run_soak_campaign(const CampaignConfig& cfg) {
  require_sim_backend(cfg);
  assert(cfg.injection.mode != InjectionMode::kScripted);

  StoreSession ss;
  open_session(cfg, ss);

  struct SoakSlotOutcome {
    obs::Tracer trace;
    obs::MetricsRegistry metrics;
  };
  std::vector<SoakSlotOutcome> outcomes(ss.pending.size());
  for_each_slot(cfg, ss.pending.size(), [&](std::size_t i) {
    auto& out = outcomes[i];
    obs::ScopedSink bind(cfg.tracer != nullptr ? &out.trace : nullptr,
                         cfg.metrics != nullptr ? &out.metrics : nullptr);
    commit_slot(cfg, ss, run_soak_slot(cfg, ss.pending[i]));
  });
  close_session(cfg, ss);

  for (auto& out : outcomes) {
    if (cfg.tracer != nullptr) cfg.tracer->append(std::move(out.trace));
    if (cfg.metrics != nullptr) cfg.metrics->merge(out.metrics);
  }
  return summarize_soak(cfg, ss.data);
}

}  // namespace aoft::fault
