#include "fault/campaign.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aoft::fault {

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptData: return "corrupt-data";
    case FaultClass::kCorruptGossip: return "corrupt-gossip";
    case FaultClass::kTwoFacedGossip: return "two-faced-gossip";
    case FaultClass::kRelayTamper: return "relay-tamper";
    case FaultClass::kDropMessage: return "drop-message";
    case FaultClass::kDeadLink: return "dead-link";
    case FaultClass::kGarbleLbs: return "garble-lbs";
    case FaultClass::kReplayStale: return "replay-stale";
    case FaultClass::kHaltNode: return "halt-node";
    case FaultClass::kInvertDirection: return "invert-direction";
    case FaultClass::kSubstituteValue: return "substitute-value";
  }
  return "?";
}

int min_dim(FaultClass c) {
  switch (c) {
    case FaultClass::kSubstituteValue:
    case FaultClass::kReplayStale:
      return 2;  // both need an injection stage >= 1, i.e. at least 2 stages
    default:
      return 1;  // every link/processor fault needs at least one link
  }
}

Scenario draw_scenario(FaultClass fclass, const CampaignConfig& cfg,
                       util::Rng& rng) {
  const int n = cfg.dim;
  const auto num_nodes = cube::NodeId{1} << n;
  Scenario s;
  s.fclass = fclass;
  s.dim = n;
  s.block = cfg.block;
  s.faulty = static_cast<cube::NodeId>(rng.next_below(num_nodes));
  // Environmental assumption 5: nodes are sane through the first message
  // exchange, so the earliest injection point is after stage 0 begins; value
  // substitution additionally requires a *validated* previous stage, and a
  // stale replay needs at least two same-window messages after its point.
  // On cubes below min_dim(fclass) those constraints are unsatisfiable;
  // clamp the stage window to [0, max(n-1, 0)] so the draw stays defined
  // (next_below requires a nonzero bound) instead of dividing by zero.
  int min_stage = fclass == FaultClass::kSubstituteValue ||
                          fclass == FaultClass::kReplayStale
                      ? 1
                      : 0;
  min_stage = std::min(min_stage, std::max(n - 1, 0));
  s.point.stage =
      min_stage +
      static_cast<int>(rng.next_below(
          std::max<std::uint64_t>(static_cast<std::uint64_t>(n - min_stage), 1)));
  if (fclass == FaultClass::kReplayStale && s.point.stage > 0)
    s.point.iter = 1 + static_cast<int>(
                           rng.next_below(static_cast<std::uint64_t>(s.point.stage)));
  else
    s.point.iter = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(s.point.stage + 1)));
  s.delta = rng.next_in(1, 1 << 20) * (rng.next_bool() ? 1 : -1);
  s.input_seed = rng.next_u64();
  // Auxiliary node: a member of the stage window other than the faulty node
  // (relay victim), or an arbitrary neighbor (dead link destination).
  if (fclass == FaultClass::kRelayTamper) {
    const cube::NodeId flip = static_cast<cube::NodeId>(
        1 + rng.next_below((cube::NodeId{1} << (s.point.stage + 1)) - 1));
    s.aux_node = s.faulty ^ flip;
  } else {
    s.aux_node =
        s.faulty ^ (cube::NodeId{1} << rng.next_below(
                        std::max<std::uint64_t>(static_cast<std::uint64_t>(n), 1)));
  }
  return s;
}

namespace {

// Build (adversary, node-fault map) realizing the scenario.
void instantiate(const Scenario& s, Adversary& adversary, NodeFaultMap& nf) {
  switch (s.fclass) {
    case FaultClass::kCorruptData:
      adversary.add(corrupt_data(s.faulty, s.point, s.delta));
      break;
    case FaultClass::kCorruptGossip:
      adversary.add(
          corrupt_gossip_entry(s.faulty, s.point, s.faulty, s.delta, s.block));
      break;
    case FaultClass::kTwoFacedGossip:
      adversary.add(two_faced_gossip(
          s.faulty, s.point, s.faulty, s.delta, s.block,
          [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
      break;
    case FaultClass::kRelayTamper:
      adversary.add(
          corrupt_gossip_entry(s.faulty, s.point, s.aux_node, s.delta, s.block));
      break;
    case FaultClass::kDropMessage:
      adversary.add(drop_message(s.faulty, s.point));
      break;
    case FaultClass::kDeadLink:
      adversary.add(dead_link(s.faulty, s.aux_node, s.point));
      break;
    case FaultClass::kGarbleLbs:
      adversary.add(garble_lbs(s.faulty, s.point, s.input_seed ^ 0xabcdefULL));
      break;
    case FaultClass::kReplayStale:
      adversary.add(replay_stale_lbs(s.faulty, s.point));
      break;
    case FaultClass::kHaltNode:
      nf[s.faulty].halt_at = s.point;
      break;
    case FaultClass::kInvertDirection:
      nf[s.faulty].invert_direction_from = s.point;
      break;
    case FaultClass::kSubstituteValue:
      nf[s.faulty].substitute_at = s.point;
      nf[s.faulty].substitute_value = 3000000000LL + s.delta;
      break;
  }
}

bool is_link_class(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptData:
    case FaultClass::kCorruptGossip:
    case FaultClass::kTwoFacedGossip:
    case FaultClass::kRelayTamper:
    case FaultClass::kDropMessage:
    case FaultClass::kDeadLink:
    case FaultClass::kGarbleLbs:
    case FaultClass::kReplayStale:
      return true;
    default:
      return false;
  }
}

// Gossip-targeting classes touch fields S_NR does not transmit.
bool applies_to_snr(FaultClass c) {
  switch (c) {
    case FaultClass::kCorruptGossip:
    case FaultClass::kTwoFacedGossip:
    case FaultClass::kRelayTamper:
    case FaultClass::kGarbleLbs:
    case FaultClass::kReplayStale:
      return false;
    default:
      return true;
  }
}

ScenarioResult finish_result(const Scenario& s, const sort::SortRun& run,
                             std::span<const sim::Key> input, bool exercised) {
  ScenarioResult r;
  r.scenario = s;
  r.outcome = sort::classify(run, input);
  r.fault_exercised = exercised;
  if (!run.errors.empty()) {
    r.first_detector = run.errors.front().source;
    r.detection_stage = run.errors.front().stage;
  }
  return r;
}

// ---- slot engine ------------------------------------------------------------
//
// One slot = one requested exercised run.  All randomness for (stream, slot,
// attempt) comes from util::derive_seed, so slots are independent pure
// functions of the campaign seed: phase 1 pre-draws attempt-0 scenarios
// serially (cheap, and keeps draw_scenario's contract single-threaded),
// phase 2 executes slots across the pool (redraws derive later attempt
// sub-seeds in-worker), and aggregation walks slots in order.

// Seed streams: single-fault classes use their enum value, multi-fault
// campaigns use a disjoint range keyed by k.
std::uint64_t class_stream(FaultClass c) {
  return static_cast<std::uint64_t>(c);
}
std::uint64_t multi_stream(int k) {
  return 0x100u + static_cast<std::uint64_t>(k);
}

struct SlotOutcome {
  std::optional<ScenarioResult> sft;  // engaged iff some attempt exercised
  int attempts = 0;                   // scenario executions consumed
  bool snr_counted = false;
  sort::Outcome snr_outcome{};
  // Per-slot observability collection (merged in slot order by phase 3).
  obs::Tracer trace;
  obs::MetricsRegistry metrics;
};

Scenario draw_slot_attempt(FaultClass fclass, const CampaignConfig& cfg,
                           std::size_t slot, int attempt) {
  util::Rng rng(
      util::derive_seed(cfg.seed, class_stream(fclass), slot,
                        static_cast<std::uint64_t>(attempt)));
  return draw_scenario(fclass, cfg, rng);
}

SlotOutcome run_slot(FaultClass fclass, const CampaignConfig& cfg,
                     std::size_t slot, const Scenario& first_draw) {
  SlotOutcome out;
  // Bind this slot's private sinks to the executing worker thread (and shadow
  // any ambient sink, so inline jobs == 1 runs collect identically).
  obs::ScopedSink bind(cfg.tracer != nullptr ? &out.trace : nullptr,
                       cfg.metrics != nullptr ? &out.metrics : nullptr);
  for (int attempt = 0; attempt < kMaxSlotAttempts; ++attempt) {
    const Scenario s = attempt == 0
                           ? first_draw
                           : draw_slot_attempt(fclass, cfg, slot, attempt);
    ++out.attempts;
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kScenario, obs::kGlobal, -1, -1, 0.0,
                  static_cast<std::int64_t>(slot), attempt,
                  to_string(fclass));
    if (auto* me = obs::metrics()) me->inc(obs::Counter::kScenarios);
    auto r = run_scenario_sft(s, cfg);
    if (!r.fault_exercised) continue;  // injection point never reached
    out.sft = std::move(r);
    if (applies_to_snr(fclass)) {
      const auto b = run_scenario_snr(s, cfg);
      if (b.fault_exercised) {
        out.snr_counted = true;
        out.snr_outcome = b.outcome;
      }
    }
    break;
  }
  return out;
}

// One simulated Machine per worker thread, rebuilt only when the cube
// dimension changes and reset() between scenarios (the sort resets it with
// the run's own cost model).  Machine::reset makes the machine observably
// identical to a fresh one, so leasing never shows in results or traces —
// it only removes the per-scenario construction and teardown of 2^dim
// channel/context sets from the hot path.  Returns nullptr when reuse is
// disabled, which makes the sorts fall back to a machine per run.
sim::Machine* lease_machine(int dim, bool reuse) {
  if (!reuse) return nullptr;
  thread_local std::unique_ptr<sim::Machine> machine;
  thread_local int machine_dim = -1;
  if (machine_dim != dim) {
    machine = std::make_unique<sim::Machine>(cube::Topology{dim},
                                             sim::CostModel{});
    machine_dim = dim;
  }
  return machine.get();
}

// Run body(i) for i in [0, count): inline when jobs == 1, across a pool
// otherwise.  Bodies write into disjoint slots of pre-sized vectors, so the
// execution order never shows in the output.  cfg.placement decides where
// pool workers run; the pin plan (a pure function of policy, topology and
// worker count — never a runtime sched_getcpu sample) is recorded into the
// campaign-level tracer/metrics as environment metadata before any slot
// trace is appended.
void for_each_slot(const CampaignConfig& cfg, std::size_t count,
                   const std::function<void(std::size_t)>& body) {
  const int n = util::ThreadPool::resolve(cfg.jobs);
  if (n <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<util::WorkerPin> pins;
  if (cfg.placement.kind != util::Placement::kNone) {
    pins = util::plan_placement(cfg.placement,
                                util::HostTopology::discover(), n);
    for (const auto& pin : pins) {
      if (cfg.tracer != nullptr) {
        cfg.tracer->instant(obs::Ev::kWorkerCpu, obs::kGlobal, -1, -1, 0.0,
                            pin.worker, pin.cpu, cfg.placement.str());
        cfg.tracer->instant(obs::Ev::kWorkerNode, obs::kGlobal, -1, -1, 0.0,
                            pin.worker, pin.node);
      }
      if (cfg.metrics != nullptr && pin.cpu >= 0)
        cfg.metrics->inc(obs::Counter::kWorkersPinned);
    }
  }
  util::ThreadPool pool(n, std::move(pins));
  pool.parallel_for(count, body);
}

}  // namespace

ScenarioResult run_scenario_sft(const Scenario& s, const CampaignConfig& cfg) {
  auto input = util::random_keys(
      s.input_seed, (std::size_t{1} << s.dim) * s.block);
  Adversary adversary;
  sort::SftOptions opts;
  opts.block = s.block;
  opts.check_progress = cfg.check_progress;
  opts.check_feasibility = cfg.check_feasibility;
  opts.check_consistency = cfg.check_consistency;
  opts.check_exchange = cfg.check_exchange;
  instantiate(s, adversary, opts.node_faults);
  if (is_link_class(s.fclass)) opts.interceptor = &adversary;
  opts.machine = lease_machine(s.dim, cfg.reuse_machines);
  auto run = sort::run_sft(s.dim, input, opts);
  const bool exercised =
      is_link_class(s.fclass) ? adversary.touched() > 0 : !opts.node_faults.empty();
  return finish_result(s, run, input, exercised);
}

ScenarioResult run_scenario_snr(const Scenario& s, const CampaignConfig& cfg) {
  auto input = util::random_keys(
      s.input_seed, (std::size_t{1} << s.dim) * s.block);
  Adversary adversary;
  sort::SnrOptions opts;
  opts.block = s.block;
  NodeFaultMap nf;
  instantiate(s, adversary, nf);
  opts.node_faults = std::move(nf);
  if (is_link_class(s.fclass)) opts.interceptor = &adversary;
  opts.machine = lease_machine(s.dim, cfg.reuse_machines);
  auto run = sort::run_snr(s.dim, input, opts);
  const bool exercised =
      is_link_class(s.fclass) ? adversary.touched() > 0 : !opts.node_faults.empty();
  return finish_result(s, run, input, exercised);
}

MultiScenario draw_multi_scenario(int k, const CampaignConfig& cfg,
                                  util::Rng& rng) {
  MultiScenario ms;
  ms.dim = cfg.dim;
  ms.block = cfg.block;
  ms.input_seed = rng.next_u64();
  std::vector<bool> used(std::size_t{1} << cfg.dim, false);
  while (static_cast<int>(ms.faults.size()) < k) {
    const auto fclass =
        kAllFaultClasses[rng.next_below(std::size(kAllFaultClasses))];
    Scenario s = draw_scenario(fclass, cfg, rng);
    if (used[s.faulty]) continue;  // distinct faulty nodes
    used[s.faulty] = true;
    s.input_seed = ms.input_seed;  // one shared input per multi-run
    ms.faults.push_back(std::move(s));
  }
  return ms;
}

MultiResult run_multi_scenario_sft(const MultiScenario& ms,
                                   const CampaignConfig& cfg) {
  auto input = util::random_keys(ms.input_seed,
                                 (std::size_t{1} << ms.dim) * ms.block);
  Adversary adversary;
  sort::SftOptions opts;
  opts.block = ms.block;
  opts.check_progress = cfg.check_progress;
  opts.check_feasibility = cfg.check_feasibility;
  opts.check_consistency = cfg.check_consistency;
  opts.check_exchange = cfg.check_exchange;
  bool any_node_fault = false;
  bool any_link_fault = false;
  for (const auto& s : ms.faults) {
    instantiate(s, adversary, opts.node_faults);
    any_node_fault |= !is_link_class(s.fclass);
    any_link_fault |= is_link_class(s.fclass);
  }
  if (any_link_fault) opts.interceptor = &adversary;
  opts.machine = lease_machine(ms.dim, cfg.reuse_machines);
  auto run = sort::run_sft(ms.dim, input, opts);

  MultiResult r;
  r.outcome = sort::classify(run, input);
  r.fault_exercised = any_node_fault || adversary.touched() > 0;
  if (!run.errors.empty()) r.detection_stage = run.errors.front().stage;
  return r;
}

std::vector<MultiTally> run_multi_campaign(const CampaignConfig& cfg, int max_k) {
  const auto slots_per_k = static_cast<std::size_t>(cfg.runs_per_class);

  struct MultiSlotOutcome {
    std::optional<MultiResult> result;  // engaged iff exercised
    int attempts = 0;
    obs::Tracer trace;
    obs::MetricsRegistry metrics;
  };

  // Phase 1: pre-draw attempt-0 multi-scenarios serially.
  std::vector<MultiScenario> first_draws(static_cast<std::size_t>(max_k) *
                                         slots_per_k);
  for (int k = 1; k <= max_k; ++k)
    for (std::size_t slot = 0; slot < slots_per_k; ++slot) {
      util::Rng rng(util::derive_seed(cfg.seed, multi_stream(k), slot, 0));
      first_draws[static_cast<std::size_t>(k - 1) * slots_per_k + slot] =
          draw_multi_scenario(k, cfg, rng);
    }

  // Phase 2: execute every (k, slot) across the pool.
  std::vector<MultiSlotOutcome> outcomes(first_draws.size());
  for_each_slot(cfg, outcomes.size(), [&](std::size_t i) {
    const int k = static_cast<int>(i / slots_per_k) + 1;
    const std::size_t slot = i % slots_per_k;
    auto& out = outcomes[i];
    obs::ScopedSink bind(cfg.tracer != nullptr ? &out.trace : nullptr,
                         cfg.metrics != nullptr ? &out.metrics : nullptr);
    for (int attempt = 0; attempt < kMaxSlotAttempts; ++attempt) {
      MultiScenario ms;
      if (attempt == 0) {
        ms = first_draws[i];
      } else {
        util::Rng rng(util::derive_seed(
            cfg.seed, multi_stream(k), slot, static_cast<std::uint64_t>(attempt)));
        ms = draw_multi_scenario(k, cfg, rng);
      }
      ++out.attempts;
      if (auto* tr = obs::tracer())
        tr->instant(obs::Ev::kScenario, obs::kGlobal, -1, -1, 0.0,
                    static_cast<std::int64_t>(slot), attempt,
                    "multi-k" + std::to_string(k));
      if (auto* me = obs::metrics()) me->inc(obs::Counter::kScenarios);
      const auto r = run_multi_scenario_sft(ms, cfg);
      if (!r.fault_exercised) continue;
      out.result = r;
      break;
    }
  });

  // Phase 3: aggregate in (k, slot) order — identical for every job count.
  std::vector<MultiTally> tallies;
  for (int k = 1; k <= max_k; ++k) {
    MultiTally tally;
    tally.k = k;
    for (std::size_t slot = 0; slot < slots_per_k; ++slot) {
      auto& out =
          outcomes[static_cast<std::size_t>(k - 1) * slots_per_k + slot];
      if (cfg.tracer != nullptr) cfg.tracer->append(std::move(out.trace));
      if (cfg.metrics != nullptr) cfg.metrics->merge(out.metrics);
      tally.attempts += out.attempts;
      if (!out.result) {
        ++tally.dropped;
        continue;
      }
      ++tally.runs;
      switch (out.result->outcome) {
        case sort::Outcome::kFailStop: ++tally.detected; break;
        case sort::Outcome::kCorrect: ++tally.masked; break;
        case sort::Outcome::kSilentWrong: ++tally.silent_wrong; break;
      }
    }
    tallies.push_back(tally);
  }
  return tallies;
}

CampaignSummary run_campaign(const CampaignConfig& cfg) {
  const auto slots_per_class = static_cast<std::size_t>(cfg.runs_per_class);

  // Supported classes at this dimension; unsupported ones keep a zeroed
  // tally with every slot reported dropped rather than crashing the draw.
  std::vector<FaultClass> active;
  for (FaultClass fclass : kAllFaultClasses)
    if (cfg.dim >= min_dim(fclass)) active.push_back(fclass);

  // Phase 1: pre-draw attempt-0 scenarios serially.
  std::vector<Scenario> first_draws(active.size() * slots_per_class);
  for (std::size_t c = 0; c < active.size(); ++c)
    for (std::size_t slot = 0; slot < slots_per_class; ++slot)
      first_draws[c * slots_per_class + slot] =
          draw_slot_attempt(active[c], cfg, slot, 0);

  // Phase 2: execute every slot, possibly across the pool.
  std::vector<SlotOutcome> outcomes(first_draws.size());
  for_each_slot(cfg, outcomes.size(), [&](std::size_t i) {
    const FaultClass fclass = active[i / slots_per_class];
    const std::size_t slot = i % slots_per_class;
    outcomes[i] = run_slot(fclass, cfg, slot, first_draws[i]);
  });

  // Phase 3: aggregate in (class, slot) order — identical for every job
  // count, so jobs == 1 and jobs == N produce the same CampaignSummary.
  CampaignSummary summary;
  std::size_t c = 0;
  for (FaultClass fclass : kAllFaultClasses) {
    ClassTally sft_tally;
    sft_tally.fclass = fclass;
    ClassTally snr_tally;
    snr_tally.fclass = fclass;
    if (cfg.dim < min_dim(fclass)) {
      sft_tally.dropped = cfg.runs_per_class;
      summary.sft.push_back(sft_tally);
      summary.snr.push_back(snr_tally);
      continue;
    }
    for (std::size_t slot = 0; slot < slots_per_class; ++slot) {
      auto& out = outcomes[c * slots_per_class + slot];
      if (cfg.tracer != nullptr) cfg.tracer->append(std::move(out.trace));
      if (cfg.metrics != nullptr) cfg.metrics->merge(out.metrics);
      sft_tally.attempts += out.attempts;
      if (!out.sft) {
        ++sft_tally.dropped;
        continue;
      }
      ++sft_tally.runs;
      switch (out.sft->outcome) {
        case sort::Outcome::kFailStop: ++sft_tally.detected; break;
        case sort::Outcome::kCorrect: ++sft_tally.masked; break;
        case sort::Outcome::kSilentWrong: ++sft_tally.silent_wrong; break;
      }
      summary.runs.push_back(std::move(*out.sft));
      if (out.snr_counted) {
        ++snr_tally.runs;
        switch (out.snr_outcome) {
          case sort::Outcome::kFailStop: ++snr_tally.detected; break;
          case sort::Outcome::kCorrect: ++snr_tally.masked; break;
          case sort::Outcome::kSilentWrong: ++snr_tally.silent_wrong; break;
        }
      }
    }
    summary.sft.push_back(sft_tally);
    summary.snr.push_back(snr_tally);
    ++c;
  }
  return summary;
}

}  // namespace aoft::fault
