// Fault localization from fail-stop diagnostics.
//
// The paper requires that on detection "a reliable communication of this
// diagnostic information is provided to the system so that appropriate
// actions may be taken" (§1).  S_FT delivers ErrorReports to the host; this
// module turns a run's report set into a suspect list — the "appropriate
// action" groundwork (reconfiguration, node retirement) the paper leaves to
// the system layer.
//
// Method.  Reports are ordered by protocol position (stage ascending, then
// iteration i..0, with the stage-end bit_compare after iteration 0).  Only
// the earliest position carries untainted evidence: once a node fail-stops,
// its silence cascades timeouts through the rest of the schedule, and those
// secondary reports accuse innocent peers.  At the earliest position:
//
//   * a timeout or Φ_C violation at iteration j accuses the reporter's
//     exchange partner across dimension j (strong: the message demonstrably
//     came, or failed to come, over that specific link);
//   * an exchange-pair Φ_F violation (iteration >= 0) likewise accuses the
//     partner;
//   * a stage-end Φ_F violation accuses every member of the reporter's
//     *inner* home subcube — the exact range the feasibility comparison
//     covered (weak; reporters are not excluded, since a consistent liar
//     runs the checks like everyone else); a stage-end Φ_P violation only
//     narrows to the full stage window.
//
// Accusations are tallied; the highest-scoring node(s) are the suspects.
// Under the paper's single-fault guarantee the true culprit is always among
// them (tested per fault class in tests/fault/localization_test.cpp).
//
// Mutually accusing adjacent suspects correspond to the paper's Definition 3
// case 2a: a fault on link e_{i,j} with both endpoints healthy cannot be
// attributed to either endpoint — the paper resolves the tie *arbitrarily*.
// The diagnosis reports the pair with `link_suspected` set instead of hiding
// the ambiguity.

#pragma once

#include <span>
#include <vector>

#include "hypercube/subcube.h"
#include "sim/machine.h"

namespace aoft::fault {

struct Accusation {
  cube::NodeId accuser = 0;
  cube::NodeId accused = 0;
  bool strong = false;  // link-specific evidence vs window-membership evidence
};

struct Diagnosis {
  std::vector<Accusation> accusations;  // earliest-position evidence only
  std::vector<cube::NodeId> suspects;   // highest-scoring accused, ascending
  bool conclusive = false;              // exactly one suspect
  bool link_suspected = false;          // two adjacent, mutually accusing suspects
};

// Analyze the error reports of one S_FT run on a dim-cube.
Diagnosis localize(std::span<const sim::ErrorReport> reports, int dim);

}  // namespace aoft::fault
