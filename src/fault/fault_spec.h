// Processor-fault specifications consumed by the sorting node programs.
//
// The paper's fault model (Definition 3) is Byzantine: a faulty component may
// deviate arbitrarily and maliciously.  Two complementary mechanisms realize
// that model here:
//
//   * link-level interception (sim::LinkInterceptor, implemented in
//     fault/adversary.h) — corrupts, drops or forks messages in flight,
//     including sending *different* values to different peers (the two-faced
//     behaviour Φ_C exists for);
//   * processor-level deviations (this header) — the node itself computes
//     wrongly: halts early, miscomputes the compare-exchange, or substitutes
//     fabricated elements consistently everywhere (the "identical values along
//     all paths" adversary of Lemma 6, which only Φ_P/Φ_F can catch).
//
// NodeFault is a plain data struct so the sort library depends only on this
// header, not on the fault library.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "hypercube/topology.h"
#include "sim/message.h"

namespace aoft::fault {

// A point in the sort's doubly nested loop: stage i, inner iteration j
// (j counts down from i to 0 within a stage; the final verification round is
// stage == dim).
struct StagePoint {
  int stage = 0;
  int iter = 0;

  friend bool operator==(const StagePoint&, const StagePoint&) = default;
};

// Reached-or-passed in protocol order: stages ascend, iterations descend.
inline bool reached(const StagePoint& point, int stage, int iter) {
  return stage > point.stage || (stage == point.stage && iter <= point.iter);
}

struct NodeFault {
  // Fail-silent: stop participating at the given point (before the exchange).
  // Peers detect the resulting message absence via the watchdog.
  std::optional<StagePoint> halt_at;

  // Escalate halt_at from a graceful coroutine return to real process death:
  // on the shared-memory backend the node SIGKILLs itself at the halt point,
  // mid-protocol with no goodbye.  The simulator (no processes to kill)
  // degrades it to the graceful halt — the two must still yield the same
  // fail-stop verdict, which is part of the backend oracle contract
  // (docs/PROTOCOL.md §11).  Meaningless without halt_at.
  bool kill_process = false;

  // Escalate halt_at to a *wedged* process instead of a dead one: the node
  // raises SIGSTOP at the halt point, so it neither speaks nor exits.  Only
  // timeout-based death detection can retire it — on the tcp backend the
  // heartbeat-loss watchdog (transport/peer_watch.h) marks it kDead; the
  // simulator degrades it to the graceful halt, and the two must agree on
  // the fail-stop verdict (docs/PROTOCOL.md §13.4).  Meaningless without
  // halt_at; mutually exclusive with kill_process.
  bool wedge_process = false;

  // Byzantine computation: perform every compare-exchange from the given
  // point onward with the *inverted* direction, so the node keeps the wrong
  // half.  Produces locally plausible but globally non-bitonic sequences.
  std::optional<StagePoint> invert_direction_from;

  // Byzantine substitution: at the start of the given stage, replace the
  // node's element (first key of its block) with `value` everywhere,
  // including its own gossip — the consistent liar of Lemma 6.
  std::optional<StagePoint> substitute_at;
  sim::Key substitute_value = 0;

  // Complicit silence: the node executes the protocol but never signals an
  // ERROR, behaving as if every check passed.  Models a faulty *checker* —
  // the case Lemma 6's "at most i faulty nodes per subcube" bound is really
  // about: detection must not hinge on any single peer's honesty.
  bool silent_checker = false;

  bool any() const {
    return halt_at || invert_direction_from || substitute_at || silent_checker;
  }
};

// Per-node fault assignment for one run.
using NodeFaultMap = std::unordered_map<cube::NodeId, NodeFault>;

// ---- fault arrival ----------------------------------------------------------
//
// How injections arrive during a campaign slot (docs/PROTOCOL.md §10.3).
// Scripted is the classic single-fault script: a concrete (node, stage, iter)
// drawn per slot.  The two probabilistic modes model realistic failure
// arrival for long soak campaigns, after the Independent / RunLength styles
// of Katana's FaultTest harness:
//
//   kIndependent — every injection point (here: every node-node message
//                  send) fires independently with probability p.  Multiple
//                  nodes may end up faulty in one run, so the Theorem 3
//                  silent-wrong == 0 contract is only asserted while the
//                  faulty-node count stays within the <= n-1 resilience
//                  bound; beyond it the observed dislocation is recorded
//                  instead of counted as a violation.
//
//   kRunLength   — one drawn node crashes (fail-silent at message
//                  granularity) on its k-th send and stays down.  Always a
//                  single faulty node, so always within the bound.
//
// All Bernoulli draws come from the slot's derived RNG stream
// (util::derive_seed), never from global state: a soak campaign is
// reproducible from (seed, mode, params) alone, at any job count.
enum class InjectionMode : std::uint8_t {
  kScripted,     // deterministic single-fault script (default)
  kIndependent,  // each injection point fires with probability p
  kRunLength,    // crash on the k-th eligible call
};

inline const char* to_string(InjectionMode m) {
  switch (m) {
    case InjectionMode::kScripted: return "scripted";
    case InjectionMode::kIndependent: return "independent";
    case InjectionMode::kRunLength: return "runlength";
  }
  return "?";
}

struct InjectionPolicy {
  InjectionMode mode = InjectionMode::kScripted;
  double p = 0.0;        // kIndependent: per-point Bernoulli probability
  std::uint64_t k = 1;   // kRunLength: crash on the k-th send (1-based)

  friend bool operator==(const InjectionPolicy&,
                         const InjectionPolicy&) = default;
};

}  // namespace aoft::fault
