#include "fault/supervisor.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <numeric>
#include <optional>
#include <string>
#include <utility>

#include "obs/sink.h"
#include "sort/sequential.h"

namespace aoft::fault {

namespace {

// Translates a physical-coordinate interceptor into a degraded configuration:
// the sim runs on logical labels 0..2^dim'-1, the fault model is specified on
// full-cube labels.
class RemappedInterceptor final : public sim::LinkInterceptor {
 public:
  RemappedInterceptor(sim::LinkInterceptor* inner,
                      const std::vector<cube::NodeId>* physical)
      : inner_(inner), physical_(physical) {}

  bool on_send(cube::NodeId from, cube::NodeId to, sim::Message& m) override {
    return inner_->on_send((*physical_)[from], (*physical_)[to], m);
  }

 private:
  sim::LinkInterceptor* inner_;
  const std::vector<cube::NodeId>* physical_;
};

// Physical-keyed fault map restricted and relabelled to the configuration.
// Faults on excluded nodes vanish — exactly the point of reconfiguring.
NodeFaultMap remap_faults(const NodeFaultMap& physical_faults,
                          const CubeConfig& cfg) {
  NodeFaultMap logical;
  for (cube::NodeId l = 0; l < static_cast<cube::NodeId>(cfg.physical.size());
       ++l) {
    auto it = physical_faults.find(cfg.physical[l]);
    if (it != physical_faults.end()) logical[l] = it->second;
  }
  return logical;
}

std::vector<cube::NodeId> to_physical(std::span<const cube::NodeId> logical,
                                      const CubeConfig& cfg) {
  std::vector<cube::NodeId> out;
  out.reserve(logical.size());
  for (cube::NodeId l : logical) out.push_back(cfg.physical[l]);
  return out;  // cfg.physical is ascending, so order is preserved
}

Diagnosis to_physical(Diagnosis d, const CubeConfig& cfg) {
  for (auto& a : d.accusations) {
    a.accuser = cfg.physical[a.accuser];
    a.accused = cfg.physical[a.accused];
  }
  d.suspects = to_physical(d.suspects, cfg);
  return d;
}

// Collapse cfg onto a subcube excluding every suspect, one greedy dimension
// cut at a time.  All-or-nothing: cfg is modified only if every suspect can
// be excluded while keeping dim >= 1 (a dim-0 "cube" is a single unverified
// node — the host rung is strictly better).  Excluded suspects are appended
// to `retired` in physical coordinates.
bool try_collapse(CubeConfig& cfg,
                  std::span<const cube::NodeId> physical_suspects,
                  std::vector<cube::NodeId>& retired) {
  CubeConfig next = cfg;
  std::vector<cube::NodeId> suspects;  // logical, within `next`
  for (cube::NodeId p : physical_suspects) {
    auto it = std::find(next.physical.begin(), next.physical.end(), p);
    if (it != next.physical.end())
      suspects.push_back(
          static_cast<cube::NodeId>(it - next.physical.begin()));
  }
  if (suspects.empty()) return false;  // nothing left to exclude

  while (!suspects.empty()) {
    if (next.dim <= 1) return false;
    auto cut = cube::best_excluding_cut(next.dim, suspects);
    if (!cut) return false;
    std::vector<cube::NodeId> kept_physical(
        std::size_t{1} << (next.dim - 1));
    std::vector<cube::NodeId> kept_suspects;
    for (cube::NodeId l = 0;
         l < static_cast<cube::NodeId>(next.physical.size()); ++l) {
      if (cut->keeps(l)) kept_physical[cut->relabel(l)] = next.physical[l];
    }
    for (cube::NodeId s : suspects)
      if (cut->keeps(s)) kept_suspects.push_back(cut->relabel(s));
    // A cut that excludes nothing cannot exist: the two halves partition the
    // suspects and best_excluding_cut keeps the smaller side.
    assert(kept_suspects.size() < suspects.size());
    next.physical = std::move(kept_physical);
    next.dim -= 1;
    next.block *= 2;
    next.cuts += 1;
    suspects = std::move(kept_suspects);
  }

  for (cube::NodeId p : physical_suspects)
    if (std::find(retired.begin(), retired.end(), p) == retired.end())
      retired.push_back(p);
  std::sort(retired.begin(), retired.end());
  cfg = std::move(next);
  return true;
}

}  // namespace

const char* to_string(Rung r) {
  switch (r) {
    case Rung::kInitial: return "initial";
    case Rung::kRollback: return "rollback";
    case Rung::kRestart: return "restart";
    case Rung::kSubcube: return "subcube";
    case Rung::kHostSort: return "host-sort";
  }
  return "?";
}

RecoveryPolicy RecoveryPolicy::full_restart(int max_attempts) {
  RecoveryPolicy p;
  p.rollback = false;
  p.reconfigure = false;
  p.host_fallback = false;
  p.attempts_per_config = max_attempts;
  p.max_attempts = max_attempts;
  p.stable_after = INT_MAX;
  return p;
}

SupervisedRun run_supervised_sort(int dim, std::span<const sort::Key> input,
                                  const sort::SftOptions& base,
                                  const RecoveryPolicy& policy,
                                  const InterceptorFactory& interceptors,
                                  const NodeFaultFactory& node_faults) {
  SupervisedRun out;
  const std::vector<sort::Key> original(input.begin(), input.end());

  CubeConfig cfg;
  cfg.dim = dim;
  cfg.block = base.block;
  cfg.physical.resize(std::size_t{1} << dim);
  std::iota(cfg.physical.begin(), cfg.physical.end(), cube::NodeId{0});

  std::vector<sort::StageCheckpoint> cert;  // certified, current config
  std::vector<Diagnosis> era;  // diagnoses since the last reconfiguration
  std::optional<sort::ResumeState> resume;
  Rung rung = Rung::kInitial;
  int config_attempts = 0;
  bool failed_before = false;
  double pending_ticks = 0.0;  // backoff + remap charge for the next attempt

  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0 && policy.backoff_ticks > 0.0)
      pending_ticks += policy.backoff_ticks *
                       std::pow(policy.backoff_factor, attempt - 1);

    sort::SftOptions opts = base;
    opts.block = cfg.block;
    opts.checkpoint = policy.rollback;
    const NodeFaultMap physical_faults =
        node_faults ? node_faults(attempt) : base.node_faults;
    opts.node_faults = cfg.degraded() ? remap_faults(physical_faults, cfg)
                                      : physical_faults;
    sim::LinkInterceptor* physical_icpt =
        interceptors ? interceptors(attempt) : base.interceptor;
    RemappedInterceptor remapped(physical_icpt, &cfg.physical);
    opts.interceptor = (cfg.degraded() && physical_icpt != nullptr)
                           ? &remapped
                           : physical_icpt;

    const double attempt_t0 = out.total_ticks;
    sort::SortRun run = resume ? sort::resume_sft(cfg.dim, *resume, opts)
                               : sort::run_sft(cfg.dim, original, opts);
    ++out.attempts;
    ++config_attempts;
    if (resume) out.stages_salvaged += resume->stage;

    const sort::Outcome outcome = sort::classify(run, original);
    const double ticks = run.summary.elapsed + pending_ticks;
    out.total_ticks += ticks;
    pending_ticks = 0.0;

    // Attempt span on the supervisor's cumulative clock: [start, end] of this
    // attempt, labelled with the rung that scheduled it and how it ended.
    if (auto* tr = obs::tracer())
      tr->span(obs::Ev::kAttempt, obs::kGlobal,
               resume ? resume->stage : 0, attempt_t0, out.total_ticks,
               attempt, static_cast<std::int64_t>(rung),
               std::string(to_string(rung)) + " -> " +
                   sort::to_string(outcome));

    RecoveryEvent ev;
    ev.attempt = attempt;
    ev.rung = rung;
    ev.config_dim = cfg.dim;
    ev.block = cfg.block;
    ev.resume_stage = resume ? resume->stage : 0;
    ev.outcome = outcome;
    ev.ticks = ticks;

    if (outcome == sort::Outcome::kCorrect) {
      out.events.push_back(std::move(ev));
      out.last = std::move(run);
      out.outcome = outcome;
      out.final_rung = rung;
      out.recovered = failed_before;
      return out;
    }

    failed_before = true;
    const Diagnosis diag =
        to_physical(localize(run.errors, cfg.dim), cfg);
    out.diagnoses.push_back(diag);
    era.push_back(diag);

    int conclusive_count = 0;
    for (const auto& d : era)
      if (!d.suspects.empty()) ++conclusive_count;
    const std::vector<cube::NodeId> persistent = persistent_suspects(era);

    ev.suspects = diag.suspects;
    ev.persistent = persistent;
    ev.inconclusive = diag.suspects.empty();
    ev.link_suspected = diag.link_suspected;
    out.events.push_back(std::move(ev));
    out.final_rung = rung;
    out.last = std::move(run);

    // Fold this attempt's certified checkpoints into the config's store
    // (resumed attempts re-certify later stages; stages are absolute).
    for (auto& ck : out.last.checkpoints) {
      if (!ck.certified) continue;
      auto it = std::find_if(cert.begin(), cert.end(), [&](const auto& c) {
        return c.stage == ck.stage;
      });
      if (it == cert.end()) cert.push_back(ck);
    }

    // Escalate.  A stable persistent-suspect set (or an exhausted attempt
    // budget with any persistent evidence) triggers reconfiguration; inside
    // a configuration, prefer resuming from the deepest certified pair.
    const bool exhausted = config_attempts >= policy.attempts_per_config;
    bool reconfigured = false;
    if (policy.reconfigure && !persistent.empty() &&
        (conclusive_count >= policy.stable_after || exhausted)) {
      reconfigured = try_collapse(cfg, persistent, out.retired);
      if (reconfigured) {
        if (auto* tr = obs::tracer()) {
          std::string retired_list;
          for (cube::NodeId p : out.retired) {
            if (!retired_list.empty()) retired_list += ',';
            retired_list += std::to_string(p);
          }
          tr->instant(obs::Ev::kReconfigure, obs::kGlobal, -1, -1,
                      out.total_ticks, cfg.dim,
                      static_cast<std::int64_t>(cfg.block),
                      std::move(retired_list));
        }
        if (auto* me = obs::metrics()) me->inc(obs::Counter::kReconfigures);
        cert.clear();
        era.clear();
        resume.reset();
        rung = Rung::kSubcube;
        config_attempts = 0;
        // Remapping redistributes the whole input through the host once.
        pending_ticks +=
            base.cost.host_alpha +
            base.cost.host_beta * static_cast<double>(original.size());
      }
    }
    if (!reconfigured) {
      if (exhausted) break;  // out of rungs in this configuration
      resume = policy.rollback ? sort::make_resume_state(cert) : std::nullopt;
      // Paranoia: never resume from a state that is not a permutation of the
      // original input or whose stage is out of range for this configuration.
      if (resume && !(resume->stage >= 1 && resume->stage < cfg.dim &&
                      sort::is_permutation_of(resume->blocks, original)))
        resume.reset();
      rung = resume ? Rung::kRollback : Rung::kRestart;
      if (auto* tr = obs::tracer())
        tr->instant(resume ? obs::Ev::kRollback : obs::Ev::kRestart,
                    obs::kGlobal, resume ? resume->stage : 0, -1,
                    out.total_ticks, resume ? resume->stage : 0);
      if (auto* me = obs::metrics())
        me->inc(resume ? obs::Counter::kRollbacks : obs::Counter::kRestarts);
    }
  }

  if (policy.host_fallback) {
    // Terminal rung: the host and its links are reliable (Environmental
    // Assumption 2), so this cannot fail and the ladder always terminates.
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kHostFallback, obs::kGlobal, -1, -1,
                  out.total_ticks, out.attempts);
    if (auto* me = obs::metrics()) me->inc(obs::Counter::kHostFallbacks);
    sort::HostSortOptions hopts;
    hopts.block = base.block;
    hopts.cost = base.cost;
    sort::SortRun run = sort::run_host_sort(dim, original, hopts);
    RecoveryEvent ev;
    ev.attempt = out.attempts;
    ev.rung = Rung::kHostSort;
    ev.config_dim = 0;
    ev.block = original.size();
    ev.outcome = sort::classify(run, original);
    ev.ticks = run.summary.elapsed + pending_ticks;
    out.total_ticks += ev.ticks;
    out.events.push_back(std::move(ev));
    ++out.attempts;
    out.outcome = sort::classify(run, original);
    out.last = std::move(run);
    out.final_rung = Rung::kHostSort;
    out.recovered = failed_before;
    return out;
  }

  out.outcome = sort::classify(out.last, original);
  return out;
}

}  // namespace aoft::fault
