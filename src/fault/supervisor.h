// Recovery supervisor: the escalation ladder that turns the fail-stop S_FT
// into a fault-*tolerant* sorting service (DESIGN §7).
//
// The paper's contract ends at fail-stop: on a Φ violation S_FT halts and
// ships diagnostics to the host "so that appropriate actions may be taken"
// (§1).  This module is those actions.  The host supervises a sequence of
// attempts, escalating through rungs that each strictly reduce what the
// faulty components can still break:
//
//   1. rollback re-execution — every stage boundary where Φ_P/Φ_F/Φ_C
//      validated LLBS_i is a host-certifiable checkpoint (SftOptions::
//      checkpoint); on fail-stop the supervisor resumes from the last
//      certified boundary instead of stage 0, salvaging validated work à la
//      Dwork/Halpern/Waarts instead of discarding it;
//   2. full restart — when no certified checkpoint pair exists (the failure
//      hit before boundary 1) the attempt restarts from scratch in the same
//      configuration;
//   3. degraded-mode reconfiguration — per-attempt diagnoses intersect into a
//      persistent-suspect set (fault/recovery.h); once it is stable the
//      workload is remapped onto a fault-free subcube that excludes the
//      suspects (cube::best_excluding_cut, block size doubled per collapsed
//      dimension) and the sort finishes there;
//   4. host sequential sort — the terminal rung.  The host and its links are
//      reliable by Environmental Assumption 2, so this rung cannot fail, and
//      the ladder therefore always terminates with a correct sorted output.
//
// The supervisor never returns a wrong answer: an attempt's output is only
// accepted after the host-side Theorem-1 classification (sorted and a
// permutation of the original input), whatever rung produced it.
//
// Every attempt appends a structured RecoveryEvent, consumed by
// bench/recovery_ladder.cpp and the --recover mode of tools/aoft_sort_cli.

#pragma once

#include <functional>
#include <span>
#include <vector>

#include "fault/localization.h"
#include "fault/recovery.h"
#include "sort/sft.h"

namespace aoft::fault {

// Returns the node-fault assignment for the given attempt, in *physical*
// (full-cube) node ids; nullptr-equivalent (empty function) means the base
// options' fault map applies to every attempt.  Lets tests and demos model
// transient processor faults precisely, like InterceptorFactory does for
// links.
using NodeFaultFactory = std::function<NodeFaultMap(int attempt)>;

enum class Rung : std::uint8_t {
  kInitial,   // first attempt in a configuration
  kRollback,  // resumed from the last certified checkpoint pair
  kRestart,   // full restart within the current configuration
  kSubcube,   // reconfigured onto a smaller fault-free subcube
  kHostSort,  // terminal: reliable host sequential sort
};

const char* to_string(Rung r);

struct RecoveryPolicy {
  bool rollback = true;      // resume from certified checkpoints
  bool reconfigure = true;   // collapse onto a suspect-free subcube
  bool host_fallback = true; // terminal host-sort rung

  int attempts_per_config = 3;  // S_FT attempts per configuration (>= 1)
  int max_attempts = 12;        // hard ceiling on S_FT attempts overall
  int stable_after = 2;         // conclusive diagnoses before suspects count
                                // as persistent (transient-vs-persistent line)

  // Host-side wait before retry k, modelling the grace period that lets
  // transients clear: backoff_ticks * backoff_factor^(k-1) logical ticks,
  // charged into the attempt's (and the run's) tick total.
  double backoff_ticks = 0.0;
  double backoff_factor = 2.0;

  // The pre-supervisor semantics of run_sft_with_recovery: blind full
  // restarts, no reconfiguration, no fallback — fail-stop after the budget.
  static RecoveryPolicy full_restart(int max_attempts = 2);
};

// The active (sub)cube a configuration runs on.  physical[l] is the full-cube
// label of logical node l; block is the per-node key count after doublings.
struct CubeConfig {
  int dim = 0;
  std::size_t block = 1;
  std::vector<cube::NodeId> physical;

  bool degraded() const { return cuts > 0; }
  int cuts = 0;  // dimensions collapsed so far
};

struct RecoveryEvent {
  int attempt = 0;  // global 0-based attempt index
  Rung rung = Rung::kInitial;
  int config_dim = 0;
  std::size_t block = 1;
  int resume_stage = 0;  // 0 = from scratch
  sort::Outcome outcome{};
  double ticks = 0.0;  // attempt elapsed + backoff (+ remap charge on kSubcube)
  std::vector<cube::NodeId> suspects;    // this attempt's diagnosis (physical)
  std::vector<cube::NodeId> persistent;  // stable intersection so far (physical)
  bool inconclusive = false;             // diagnosis produced no suspects
  bool link_suspected = false;
};

struct SupervisedRun {
  sort::SortRun last;      // the final attempt's run
  sort::Outcome outcome{}; // classified against the original input
  Rung final_rung = Rung::kInitial;
  int attempts = 0;        // total attempts (host-sort rung included)
  bool recovered = false;  // correct output after >= 1 fail-stop
  double total_ticks = 0.0;
  int stages_salvaged = 0;  // sum of resume stages over rollback attempts
  std::vector<RecoveryEvent> events;
  std::vector<Diagnosis> diagnoses;   // one per failed attempt, physical ids
  std::vector<cube::NodeId> retired;  // suspects excluded by reconfiguration
};

// Sort `input` under the full escalation ladder.  With the default policy the
// returned outcome is kCorrect for any fault pattern the predicates catch —
// the terminal host rung cannot fail.  `interceptors` supplies the link
// interceptor per attempt in physical coordinates (remapped automatically in
// degraded configurations); `node_faults`, when set, overrides
// base.node_faults per attempt.
SupervisedRun run_supervised_sort(int dim, std::span<const sort::Key> input,
                                  const sort::SftOptions& base,
                                  const RecoveryPolicy& policy = {},
                                  const InterceptorFactory& interceptors = nullptr,
                                  const NodeFaultFactory& node_faults = nullptr);

}  // namespace aoft::fault
