// Link-level Byzantine adversaries (paper Definition 3, environmental
// assumption 1: "inter-node communications and processors are subject to
// Byzantine faults").
//
// An Adversary is a sim::LinkInterceptor composed of mutators.  Each mutator
// sees every node-node message at send time — (from, to, header, payload) —
// and may mutate or drop it.  Because the interceptor distinguishes
// destinations, it expresses the worst-case *two-faced* behaviours the
// consistency predicate Φ_C exists to catch: the same logical datum told
// differently to different peers.
//
// All mutators are deterministic; randomized ones draw from an explicit
// seed, so fault campaigns replay exactly.

#pragma once

#include <functional>
#include <vector>

#include "fault/fault_spec.h"
#include "sim/machine.h"
#include "util/bitvec.h"

namespace aoft::fault {

// What a mutator did to one message.
enum class Action : std::uint8_t { kPass, kMutated, kDropped };

using Mutator =
    std::function<Action(cube::NodeId from, cube::NodeId to, sim::Message&)>;

class Adversary : public sim::LinkInterceptor {
 public:
  Adversary() = default;
  explicit Adversary(std::vector<Mutator> mutators)
      : mutators_(std::move(mutators)) {}

  void add(Mutator m) { mutators_.push_back(std::move(m)); }

  bool on_send(cube::NodeId from, cube::NodeId to, sim::Message& m) override;

  // Number of messages this adversary actually touched (mutated or dropped);
  // campaigns use it to discard scenarios whose injection point was never
  // reached (e.g. the victim halted earlier for another reason).
  std::uint64_t touched() const { return touched_; }

 private:
  std::vector<Mutator> mutators_;
  std::uint64_t touched_ = 0;
};

// ---- mutator factories ------------------------------------------------------
// All factories target messages *sent by* `faulty`.

// Corrupt the compare-exchange operand(s): add `delta` to every data word of
// the message sent at exactly (stage, iter).
Mutator corrupt_data(cube::NodeId faulty, StagePoint at, sim::Key delta);

// Corrupt the piggybacked copy of `entry`'s block (all m words get +delta) in
// every LBS-carrying message from `faulty` from (stage, iter) onward.
// A uniform lie: every peer hears the same wrong value.
Mutator corrupt_gossip_entry(cube::NodeId faulty, StagePoint from_point,
                             cube::NodeId entry, sim::Key delta, std::size_t m);

// Two-faced lie: as corrupt_gossip_entry, but only on messages to
// destinations satisfying `pred` — other peers hear the truth, so only the
// consistency predicate can convict.
Mutator two_faced_gossip(cube::NodeId faulty, StagePoint from_point,
                         cube::NodeId entry, sim::Key delta, std::size_t m,
                         std::function<bool(cube::NodeId dest)> pred);

// Drop the single message sent at exactly (stage, iter).
Mutator drop_message(cube::NodeId faulty, StagePoint at);

// Kill one directed link permanently from (stage, iter) onward.
Mutator dead_link(cube::NodeId faulty, cube::NodeId dest, StagePoint from_point);

// Replace the whole piggybacked LBS slice with deterministic noise from
// (stage, iter) onward.
Mutator garble_lbs(cube::NodeId faulty, StagePoint from_point, std::uint64_t seed);

// Replay attack: record the LBS slice of the first message `faulty` sends at
// or after (stage, iter), then substitute that stale copy into every later
// LBS-carrying message of the same slice length (stale data is plausible in
// shape but semantically outdated — the copies disagree with fresh ones or
// fail the stage-end comparisons).
Mutator replay_stale_lbs(cube::NodeId faulty, StagePoint from_point);

// ---- probabilistic arrival (InjectionMode, fault_spec.h) --------------------

// Shared accounting for the probabilistic mutators: how many injection
// points were seen, how many fired, and which source nodes ever fired (the
// faulty set the <= n-1 resilience bound is judged against).  The caller
// sizes `fired_nodes` to the cube's node count and keeps the struct alive
// for the adversary's lifetime.
struct ArrivalStats {
  std::uint64_t points = 0;
  std::uint64_t fired = 0;
  util::BitVec fired_nodes;
};

// InjectionMode::kIndependent — every node-node message send is an injection
// point that fires with probability p, corrupting every key word (operands
// and piggybacked LBS alike) by +delta.  Draws come from a private generator
// seeded with `seed`; the simulator delivers messages in a deterministic
// order, so the firing pattern is a pure function of (seed, p, run).
Mutator independent_corrupt(double p, sim::Key delta, std::uint64_t seed,
                            ArrivalStats* stats);

// InjectionMode::kRunLength — `faulty` crashes on its k-th send (1-based):
// that message and every later one from the node is dropped, modelling
// fail-silent arrival at message granularity.  Peers detect the absence via
// the watchdog, exactly as for a scripted halt.
Mutator run_length_crash(cube::NodeId faulty, std::uint64_t k,
                         ArrivalStats* stats);

}  // namespace aoft::fault
