// Retry-based recovery on top of fail-stop detection (extension, DESIGN §7).
//
// The paper's contract ends at fail-stop: "the result of the calculation is
// either completely correct, or the entire system halts with an error
// condition" (§4), with diagnostics shipped to the host "so that appropriate
// actions may be taken" (§1).  This module implements the most basic such
// action: the host re-runs the sort, diagnosing every failed attempt.
//
//   * A *transient* fault (a glitched message, a link that recovers) does
//     not reappear: the retry completes correctly and the run counts as
//     recovered — the overall system is now fault-tolerant, not merely
//     fail-stop, at the cost of re-execution instead of redundancy.
//   * A *permanent* fault reproduces the fail-stop; the per-attempt
//     diagnoses then intersect to a stable suspect set, which is exactly
//     what an operator (or a reconfiguration layer) needs to retire a node.
//
// Faults are injected per attempt through a factory, so tests and demos can
// model transience precisely.

#pragma once

#include <functional>
#include <span>

#include "fault/localization.h"
#include "sort/sft.h"

namespace aoft::fault {

// Returns the interceptor to install for the given attempt (nullptr = clean
// links).  The returned object must stay alive for the whole attempt.
using InterceptorFactory = std::function<sim::LinkInterceptor*(int attempt)>;

struct RecoveryRun {
  sort::SortRun last;                // the final attempt's run
  int attempts = 0;                  // total attempts executed
  bool recovered = false;            // a retry succeeded after >= 1 fail-stop
  std::vector<Diagnosis> diagnoses;  // one per failed attempt
};

// Suspects implicated by every *conclusive* failed attempt — the
// permanent-fault candidates.  An inconclusive diagnosis (no suspects at
// all, e.g. the fail-stop cascaded before localization could pin anyone)
// carries no exculpatory evidence, so it is skipped rather than vacuously
// emptying the intersection; a link-pair diagnosis (Definition 3 case 2a)
// participates with both endpoints, so a recurring dead link intersects to
// its stable endpoint pair.  Empty when no conclusive diagnosis exists or no
// suspect recurs through all of them.
std::vector<cube::NodeId> persistent_suspects(std::span<const Diagnosis> diagnoses);
std::vector<cube::NodeId> persistent_suspects(const RecoveryRun& run);

// Run S_FT up to `max_attempts` times.  `base` supplies everything except
// the interceptor (taken from the factory per attempt); node faults in
// `base` model permanent processor faults and apply to every attempt.
// Since the recovery-supervisor PR this is a compatibility shim over
// fault/supervisor.h with RecoveryPolicy::full_restart(max_attempts): blind
// full restarts, no reconfiguration, no host fallback.
RecoveryRun run_sft_with_recovery(int dim, std::span<const sort::Key> input,
                                  const sort::SftOptions& base,
                                  const InterceptorFactory& interceptors,
                                  int max_attempts = 2);

}  // namespace aoft::fault
