#include "fault/localization.h"

#include <algorithm>
#include <map>

namespace aoft::fault {

namespace {

// Total protocol order of a report position: stages ascend; inside a stage
// the iterations run i, i-1, ..., 0 and the stage-end check (iter == -1)
// comes last.  Encode as stage * 2^16 + rank(iter).
long order_key(const sim::ErrorReport& r) {
  const long stage = r.stage < 0 ? 0 : r.stage;
  // Iterations count down from the stage index; map them to ascending ranks
  // with the stage-end (-1) largest.  Iteration values never exceed 2^8.
  const long iter_rank = r.iter < 0 ? 512 : 256 - r.iter;
  return stage * 1024 + iter_rank;
}

}  // namespace

Diagnosis localize(std::span<const sim::ErrorReport> reports, int dim) {
  Diagnosis d;
  if (reports.empty()) return d;

  const long first = order_key(*std::min_element(
      reports.begin(), reports.end(),
      [](const auto& a, const auto& b) { return order_key(a) < order_key(b); }));

  for (const auto& r : reports) {
    if (order_key(r) != first) continue;
    switch (r.source) {
      case sim::ErrorSource::kTimeout:
      case sim::ErrorSource::kPhiC: {
        if (r.iter >= 0 && r.iter < dim) {
          const cube::NodeId partner = r.node ^ (cube::NodeId{1} << r.iter);
          d.accusations.push_back({r.node, partner, true});
        }
        break;
      }
      case sim::ErrorSource::kPhiF:
      case sim::ErrorSource::kPhiP: {
        if (r.iter >= 0 && r.iter < dim) {
          // Exchange-pair check: link-specific, strong.
          const cube::NodeId partner = r.node ^ (cube::NodeId{1} << r.iter);
          d.accusations.push_back({r.node, partner, true});
          break;
        }
        // Stage-end bit_compare.  A feasibility failure means the reporter's
        // *inner* home subcube (the range Φ_F compared) contains the bad
        // element — reporters are not excluded, because a consistent liar
        // runs the checks like everyone else and may report its own window.
        // A progress failure only narrows to the full stage window.
        const int inner_dim = std::min(r.stage, dim);
        const int wdim =
            r.source == sim::ErrorSource::kPhiF ? inner_dim
                                                : std::min(r.stage + 1, dim);
        const auto window = cube::home_subcube(wdim, r.node);
        for (cube::NodeId p = window.start; p <= window.end; ++p)
          d.accusations.push_back({r.node, p, false});
        break;
      }
      case sim::ErrorSource::kApp:
        break;  // application-defined; no topology-derived accusation
    }
  }

  // Tally: strong accusations outweigh any number of weak ones from a single
  // report (3 vs 1), and multiple independent accusers accumulate.
  std::map<cube::NodeId, int> score;
  for (const auto& a : d.accusations) score[a.accused] += a.strong ? 3 : 1;
  int best = 0;
  for (const auto& [node, s] : score) best = std::max(best, s);
  for (const auto& [node, s] : score)
    if (s == best && best > 0) d.suspects.push_back(node);
  d.conclusive = d.suspects.size() == 1;

  // Definition 3 case 2a: two adjacent suspects pointing at each other with
  // link-specific evidence indicate a faulty link between healthy endpoints.
  if (d.suspects.size() == 2) {
    const auto a = d.suspects[0], b = d.suspects[1];
    const auto x = a ^ b;
    const bool adjacent = x != 0 && (x & (x - 1)) == 0;
    bool a_blames_b = false, b_blames_a = false;
    for (const auto& acc : d.accusations) {
      a_blames_b |= acc.strong && acc.accuser == a && acc.accused == b;
      b_blames_a |= acc.strong && acc.accuser == b && acc.accused == a;
    }
    d.link_suspected = adjacent && a_blames_b && b_blames_a;
  }
  return d;
}

}  // namespace aoft::fault
