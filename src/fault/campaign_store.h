// Durable campaign state: checkpoint files, the streamed per-slot JSONL
// record, and shard merging (docs/PROTOCOL.md §10).
//
// A fault campaign is itself n independent work units that must tolerate the
// failure of the worker running them (the Dwork/Halpern/Waarts framing): one
// preemption must not throw away every completed slot of a long sweep.
// Because the slot engine's randomness is a pure function of
// (seed, stream, slot, attempt) — docs/PROTOCOL.md §8 — a slot's outcome can
// be persisted once and never re-run: this module stores, per completed
// global slot, everything phase-3 aggregation needs, so a resumed or merged
// campaign reconstructs a CampaignSummary bit-identical to an uninterrupted
// serial run.
//
// Three artifacts:
//
//   * checkpoint (binary, versioned, fnv1a64-digest-protected, written
//     crash-safely via util::write_file_atomic) — campaign identity, the
//     slots-completed bitmap (util::BitVec) and one SlotRecord per completed
//     slot.  Any truncation, bit flip or identity mismatch loads as a loud,
//     specific StoreStatus — never a crash, never a silent partial resume.
//
//   * slot stream (JSONL, schema "aoft-campaign-v1") — one record per slot,
//     emitted incrementally in global-slot order while the campaign runs, so
//     a killed run's partial results are already on disk.  Dropped slots and
//     redraw exhaustion are visible per record, not only in the end-of-run
//     tally.  On resume the stream is re-validated and any torn tail is
//     truncated; the completed file is byte-identical to the one an
//     uninterrupted run writes.
//
//   * merge — `--shard=i/N` partitions the global slot space by residue;
//     merge_checkpoints folds N disjoint shard checkpoints back into the
//     canonical whole, bit-identical across sharding layouts.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "util/bitvec.h"

namespace aoft::fault {

// Version 2 added the identity's transport byte; v1 files load as
// kBadVersion — loud, never a silent cross-transport resume.
inline constexpr std::uint32_t kCheckpointVersion = 2;
inline constexpr char kCheckpointMagic[8] = {'A', 'O', 'F', 'T',
                                             'C', 'K', 'P', '1'};
inline constexpr const char* kCampaignStreamSchema = "aoft-campaign-v1";

// Everything that must match for two campaign artifacts to describe the same
// slot space.  Two checkpoints resume/merge only when every field (modulo
// shard_index, for merging) is equal.
struct CampaignIdentity {
  std::int32_t dim = 0;
  std::uint64_t block = 1;
  std::int32_t runs_per_class = 0;
  std::uint64_t seed = 0;
  std::uint8_t mode = 0;         // fault::InjectionMode
  std::uint64_t p_bits = 0;      // bit pattern of InjectionPolicy::p
  std::uint64_t k = 1;           // InjectionPolicy::k
  std::uint32_t checks = 0xF;    // predicate ablation bits (P|F<<1|C<<2|X<<3)
  std::uint8_t transport = 0;    // transport::Backend that ran the slots
  std::int32_t shard_index = 0;
  std::int32_t shard_count = 1;

  friend bool operator==(const CampaignIdentity&,
                         const CampaignIdentity&) = default;

  // Equal in every field that defines the slot space and its results — i.e.
  // everything except which shard this artifact covers.
  bool same_campaign(const CampaignIdentity& o) const;
};

CampaignIdentity identity_of(const CampaignConfig& cfg);

// Reconstruct the CampaignConfig fields the aggregation functions read.
CampaignConfig config_of(const CampaignIdentity& id);

// The serialized outcome of one completed global slot.  `exercised == false`
// means the slot completed by exhausting its redraw budget (dropped).
struct SlotRecord {
  std::uint64_t gslot = 0;
  std::int32_t attempts = 0;
  bool exercised = false;
  // Scripted-mode payload (valid when exercised):
  Scenario scenario{};
  sort::Outcome outcome{};
  sim::ErrorSource first_detector{};
  std::int32_t detection_stage = -1;
  bool snr_counted = false;
  sort::Outcome snr_outcome{};
  // Arrival accounting (both modes):
  std::uint64_t faults_fired = 0;
  std::uint32_t faulty_nodes = 0;
  // Soak mode, silent-wrong beyond the resilience bound: observed
  // dislocation of the output (max displacement from its sorted order).
  std::uint64_t dislocation = 0;

  friend bool operator==(const SlotRecord&, const SlotRecord&) = default;
};

// Why a checkpoint could not be used.  Every corruption shape a crash can
// produce maps to a distinct, loud status (tests/fault/
// campaign_checkpoint_test.cpp exercises each).
enum class StoreStatus : std::uint8_t {
  kOk,
  kMissing,           // no file at the path
  kTruncated,         // shorter than its own framing claims
  kBadMagic,          // not a checkpoint file (garbage)
  kBadVersion,        // a future/unknown checkpoint format
  kDigestMismatch,    // payload bytes corrupted
  kMalformed,         // digest ok but internally inconsistent
  kIdentityMismatch,  // a different campaign's checkpoint
};

const char* to_string(StoreStatus s);

// Thrown by the campaign engine when --resume meets an unusable checkpoint
// or stream (and force-restart was not requested).
class StoreError : public std::runtime_error {
 public:
  StoreError(StoreStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  StoreStatus status() const { return status_; }

 private:
  StoreStatus status_;
};

struct CheckpointData {
  CampaignIdentity identity;
  util::BitVec done;               // one bit per global slot
  std::vector<SlotRecord> records; // ascending gslot, one per set bit
};

// Serialize/deserialize a checkpoint.  save writes crash-safely
// (temp → fsync → rename); load never throws — every failure shape returns
// its status and a human-readable `error`.
bool save_checkpoint(const std::string& path, const CheckpointData& data,
                     std::string* error);
StoreStatus load_checkpoint(const std::string& path, CheckpointData* out,
                            std::string* error);

// ---- slot space -------------------------------------------------------------

// Global slot space: scripted campaigns use active_classes(dim) blocks of
// runs_per_class slots each (class order = kAllFaultClasses order); soak
// campaigns use a single block of runs_per_class slots.
std::size_t identity_total_slots(const CampaignIdentity& id);

// Ascending global slot indices owned by this identity's shard
// (g % shard_count == shard_index) — also the stream emission order.
std::vector<std::uint64_t> shard_slots(const CampaignIdentity& id);

// Display name of the class owning global slot g ("soak" in soak mode).
const char* slot_class_name(const CampaignIdentity& id, std::uint64_t g);

// The record for global slot g, or nullptr (records are ascending by gslot).
const SlotRecord* find_record(const CheckpointData& store, std::uint64_t g);

// ---- aggregation ------------------------------------------------------------

// Rebuild the canonical aggregates from whatever records are present.
// Missing slots (another shard's, or not yet executed) contribute nothing —
// summaries over a complete record set are bit-identical to an uninterrupted
// serial run's.
CampaignSummary summarize_slots(const CampaignConfig& cfg,
                                const CheckpointData& store);
SoakTally summarize_soak(const CampaignConfig& cfg,
                         const CheckpointData& store);

// Fold shard checkpoints into one canonical (shard 0/1) checkpoint.  All
// parts must be the same campaign, carry distinct in-range shard indices and
// the same shard_count, and own only slots of their residue class.  Partial
// coverage is allowed — the caller reads done.count() to judge.
StoreStatus merge_checkpoints(const std::vector<CheckpointData>& parts,
                              CheckpointData* out, std::string* error);

// ---- streaming --------------------------------------------------------------

// Canonical JSONL lines (fixed field order; byte-equality of two complete
// streams is record-equality of two campaigns).
std::string stream_header(const CampaignIdentity& id);
std::string stream_line(const CampaignIdentity& id, const SlotRecord& rec);

// Incremental, ordered emitter for the slot stream.  The engine feeds
// records strictly in shard_slots() order; every append is flushed, so a
// crash loses at most one torn (or not-yet-checkpointed) tail line.
class SlotStream {
 public:
  SlotStream() = default;

  // Start (or restart) the stream file: atomically rewrite it as `header`
  // plus the already-completed `prefix` lines — empty for a fresh campaign,
  // the checkpoint's in-order completed records on resume.  Rebuilding the
  // prefix from checkpoint records (rather than trusting whatever bytes a
  // killed process left) is what discards torn tails and lines that ran
  // ahead of the last checkpoint save, and what makes the finished file
  // byte-identical to an uninterrupted run's.  With `resume`, an existing
  // file must begin with the same header line — a different header means
  // the path belongs to another campaign and is refused, not clobbered.
  bool open(const std::string& path, const std::string& header,
            const std::vector<std::string>& prefix, bool resume,
            std::string* error);

  // Records on disk so far (a prefix of shard_slots order).
  std::size_t emitted() const { return emitted_; }

  // Append one line (the next record in emission order) and flush.
  bool append(const std::string& line, std::string* error);

  bool active() const { return !path_.empty(); }

 private:
  std::string path_;
  std::size_t emitted_ = 0;
};

}  // namespace aoft::fault
