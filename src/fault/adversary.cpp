#include "fault/adversary.h"

#include <memory>

#include "util/rng.h"

namespace aoft::fault {

bool Adversary::on_send(cube::NodeId from, cube::NodeId to, sim::Message& m) {
  for (auto& mutator : mutators_) {
    switch (mutator(from, to, m)) {
      case Action::kPass:
        break;
      case Action::kMutated:
        ++touched_;
        break;
      case Action::kDropped:
        ++touched_;
        return false;
    }
  }
  return true;
}

namespace {

bool at_point(const sim::Message& m, const StagePoint& p) {
  return m.stage == p.stage && m.iter == p.iter;
}

bool reached_point(const sim::Message& m, const StagePoint& p) {
  return m.stage >= 0 && m.iter >= 0 && reached(p, m.stage, m.iter);
}

}  // namespace

Mutator corrupt_data(cube::NodeId faulty, StagePoint at, sim::Key delta) {
  return [=](cube::NodeId from, cube::NodeId, sim::Message& m) {
    if (from != faulty || !at_point(m, at) || m.data.empty()) return Action::kPass;
    for (auto& k : m.data) k += delta;
    return Action::kMutated;
  };
}

Mutator corrupt_gossip_entry(cube::NodeId faulty, StagePoint from_point,
                             cube::NodeId entry, sim::Key delta, std::size_t m_keys) {
  return two_faced_gossip(faulty, from_point, entry, delta, m_keys,
                          [](cube::NodeId) { return true; });
}

Mutator two_faced_gossip(cube::NodeId faulty, StagePoint from_point,
                         cube::NodeId entry, sim::Key delta, std::size_t m_keys,
                         std::function<bool(cube::NodeId dest)> pred) {
  return [=](cube::NodeId from, cube::NodeId to, sim::Message& m) {
    if (from != faulty || m.lbs.empty() || !reached_point(m, from_point) ||
        !pred(to))
      return Action::kPass;
    // The LBS slice covers the stage window; locate the entry inside it.
    // The window is the aligned block of (lbs.size() / m_keys) node labels
    // containing the sender.
    const std::size_t window_nodes = m.lbs.size() / m_keys;
    const cube::NodeId start =
        from - (from % static_cast<cube::NodeId>(window_nodes));
    if (entry < start || entry >= start + window_nodes) return Action::kPass;
    const std::size_t off = static_cast<std::size_t>(entry - start) * m_keys;
    for (std::size_t w = 0; w < m_keys; ++w) m.lbs[off + w] += delta;
    return Action::kMutated;
  };
}

Mutator drop_message(cube::NodeId faulty, StagePoint at) {
  return [=](cube::NodeId from, cube::NodeId, sim::Message& m) {
    if (from != faulty || !at_point(m, at)) return Action::kPass;
    return Action::kDropped;
  };
}

Mutator dead_link(cube::NodeId faulty, cube::NodeId dest, StagePoint from_point) {
  return [=](cube::NodeId from, cube::NodeId to, sim::Message& m) {
    if (from != faulty || to != dest || !reached_point(m, from_point))
      return Action::kPass;
    return Action::kDropped;
  };
}

Mutator replay_stale_lbs(cube::NodeId faulty, StagePoint from_point) {
  // The cache lives in the callable's shared state: mutators are copied into
  // the Adversary, so keep it behind a shared_ptr.
  auto cache = std::make_shared<std::vector<sim::Key>>();
  return [=](cube::NodeId from, cube::NodeId, sim::Message& m) {
    if (from != faulty || m.lbs.empty() || !reached_point(m, from_point))
      return Action::kPass;
    if (cache->empty()) {
      cache->assign(m.lbs.begin(), m.lbs.end());  // record once, replay forever
      return Action::kPass;
    }
    if (cache->size() != m.lbs.size()) return Action::kPass;  // stage moved on
    if (m.lbs == *cache) return Action::kPass;  // indistinguishable replay
    m.lbs = *cache;
    return Action::kMutated;
  };
}

Mutator independent_corrupt(double p, sim::Key delta, std::uint64_t seed,
                            ArrivalStats* stats) {
  // One generator for the whole run, behind a shared_ptr because mutators
  // are copied into the Adversary.  Every send consumes exactly one draw,
  // so the firing pattern is reproducible from the seed alone.
  auto rng = std::make_shared<util::Rng>(seed);
  return [=](cube::NodeId from, cube::NodeId, sim::Message& m) {
    ++stats->points;
    if (rng->next_unit() >= p) return Action::kPass;
    bool hit = false;
    for (auto& k : m.data) {
      k += delta;
      hit = true;
    }
    for (auto& k : m.lbs) {
      k += delta;
      hit = true;
    }
    if (!hit) return Action::kPass;  // nothing to corrupt (no key words)
    ++stats->fired;
    if (from < stats->fired_nodes.size()) stats->fired_nodes.set(from);
    return Action::kMutated;
  };
}

Mutator run_length_crash(cube::NodeId faulty, std::uint64_t k,
                         ArrivalStats* stats) {
  auto sends = std::make_shared<std::uint64_t>(0);
  return [=](cube::NodeId from, cube::NodeId, sim::Message&) {
    if (from != faulty) return Action::kPass;
    ++stats->points;
    if (++*sends < k) return Action::kPass;  // crash arrives on the k-th send
    ++stats->fired;
    if (from < stats->fired_nodes.size()) stats->fired_nodes.set(from);
    return Action::kDropped;
  };
}

Mutator garble_lbs(cube::NodeId faulty, StagePoint from_point, std::uint64_t seed) {
  return [=](cube::NodeId from, cube::NodeId, sim::Message& m) {
    if (from != faulty || m.lbs.empty() || !reached_point(m, from_point))
      return Action::kPass;
    util::Rng rng(seed ^ (static_cast<std::uint64_t>(m.stage) << 32) ^
                  static_cast<std::uint64_t>(m.iter));
    for (auto& k : m.lbs) k = rng.next_in(-1000000, 1000000);
    return Action::kMutated;
  };
}

}  // namespace aoft::fault
