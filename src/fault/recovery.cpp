#include "fault/recovery.h"

#include <algorithm>

#include "fault/supervisor.h"

namespace aoft::fault {

std::vector<cube::NodeId> persistent_suspects(std::span<const Diagnosis> diagnoses) {
  std::vector<cube::NodeId> common;
  bool any = false;
  for (const auto& d : diagnoses) {
    // An inconclusive diagnosis (no suspects) carries no exculpatory
    // evidence; skipping it keeps the intersection from vacuously emptying.
    if (d.suspects.empty()) continue;
    if (!any) {
      common = d.suspects;  // already ascending
      any = true;
      continue;
    }
    std::vector<cube::NodeId> next;
    std::set_intersection(common.begin(), common.end(), d.suspects.begin(),
                          d.suspects.end(), std::back_inserter(next));
    common = std::move(next);
    if (common.empty()) break;
  }
  return any ? common : std::vector<cube::NodeId>{};
}

std::vector<cube::NodeId> persistent_suspects(const RecoveryRun& run) {
  return persistent_suspects(run.diagnoses);
}

RecoveryRun run_sft_with_recovery(int dim, std::span<const sort::Key> input,
                                  const sort::SftOptions& base,
                                  const InterceptorFactory& interceptors,
                                  int max_attempts) {
  SupervisedRun sup = run_supervised_sort(
      dim, input, base, RecoveryPolicy::full_restart(max_attempts), interceptors);
  RecoveryRun out;
  out.last = std::move(sup.last);
  out.attempts = sup.attempts;
  out.recovered = sup.recovered;
  out.diagnoses = std::move(sup.diagnoses);
  return out;
}

}  // namespace aoft::fault
