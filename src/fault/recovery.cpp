#include "fault/recovery.h"

#include <algorithm>

namespace aoft::fault {

std::vector<cube::NodeId> persistent_suspects(const RecoveryRun& run) {
  std::vector<cube::NodeId> common;
  bool first = true;
  for (const auto& d : run.diagnoses) {
    if (first) {
      common = d.suspects;  // already ascending
      first = false;
      continue;
    }
    std::vector<cube::NodeId> next;
    std::set_intersection(common.begin(), common.end(), d.suspects.begin(),
                          d.suspects.end(), std::back_inserter(next));
    common = std::move(next);
  }
  return first ? std::vector<cube::NodeId>{} : common;
}

RecoveryRun run_sft_with_recovery(int dim, std::span<const sort::Key> input,
                                  const sort::SftOptions& base,
                                  const InterceptorFactory& interceptors,
                                  int max_attempts) {
  RecoveryRun out;
  bool failed_before = false;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    sort::SftOptions opts = base;
    opts.interceptor = interceptors ? interceptors(attempt) : nullptr;
    out.last = sort::run_sft(dim, input, opts);
    ++out.attempts;
    if (!out.last.fail_stop()) {
      out.recovered = failed_before;
      return out;
    }
    failed_before = true;
    out.diagnoses.push_back(localize(out.last.errors, dim));
  }
  return out;
}

}  // namespace aoft::fault
