// AOFT-protected distributed relaxation labeling.
//
// The constraint-predicate paradigm's second published application was
// "A Reliable Parallel Algorithm for Relaxation Labeling" (McMillin & Ni,
// 1988 — reference [6] of the sorting paper).  This module reconstructs that
// class of computation on the simulated multicomputer: a chain of M objects,
// each carrying a probability vector over L labels, is smoothed by the
// classical Rosenfeld–Hummel–Zucker update
//
//     q_i(λ)  =  Σ_{j ∈ {i-1, i+1}} Σ_μ r(λ,μ) · p_j(μ)          (support)
//     p'_i(λ) =  p_i(λ)·(1 + q_i(λ)) / Σ_μ p_i(μ)·(1 + q_i(μ))   (update)
//
// with a symmetric, non-negative compatibility matrix r.  Objects are
// distributed in contiguous chunks over the Gray-code ring; each sweep
// exchanges the chunk-boundary label vectors with the two ring neighbors.
//
// The constraint predicate:
//
//   progress    — for every object, the updated distribution must not lose
//                 support against the sweep's own support vector:
//                 Σ_λ p'(λ)·q(λ) ≥ Σ_λ p(λ)·q(λ) − ε.  With q ≥ 0 this is a
//                 theorem (the update reweights toward larger q; the gain is
//                 Var_p(q)/Z ≥ 0), so honest runs are provably alarm-free
//                 and any tampered update that demotes supported labels is
//                 caught on the spot;
//   feasibility — every label vector stays a probability distribution:
//                 entries in [0,1], unit sum (the problem's natural
//                 constraint);
//   consistency — every halo message echoes the vector last received from
//                 its destination, cross-auditing each link at both ends.
//
// Violations signal ERROR to the host and halt the node: fail-stop.

#pragma once

#include <span>
#include <vector>

#include "sim/cost_model.h"
#include "sim/machine.h"

namespace aoft::core {

struct LabelingProblem {
  std::size_t labels = 2;
  // Initial probability vectors, flattened: object i's vector at
  // [i*labels, (i+1)*labels).  Size = objects * labels.
  std::vector<double> initial;
  // Symmetric non-negative compatibility matrix, flattened L×L row-major.
  std::vector<double> compat;
};

struct LabelingOptions {
  std::size_t objects_per_node = 4;
  int sweeps = 32;  // fixed, globally known
  sim::CostModel cost{};
  sim::LinkInterceptor* interceptor = nullptr;
  bool check_progress = true;
  bool check_feasibility = true;
  bool check_consistency = true;
};

struct LabelingRun {
  std::vector<double> p;  // final probability vectors, flattened
  std::vector<sim::ErrorReport> errors;
  sim::RunSummary summary;

  bool fail_stop() const { return !errors.empty(); }
  // argmax label per object.
  std::vector<std::size_t> decisions(std::size_t labels) const;
};

// Solve on a simulated dim-cube.  problem.initial must hold
// objects_per_node * 2^dim vectors.
LabelingRun run_labeling(int dim, const LabelingProblem& problem,
                         const LabelingOptions& opts = {});

// Convenience: a smoothing compatibility matrix for L labels — r(λ,λ) = 1,
// r(λ,μ) = off for λ ≠ μ (0 ≤ off ≤ 1 keeps the progress theorem valid).
std::vector<double> smoothing_compat(std::size_t labels, double off = 0.0);

}  // namespace aoft::core
