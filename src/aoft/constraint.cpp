#include "aoft/constraint.h"

namespace aoft::core {

const char* to_string(Violation::Metric m) {
  switch (m) {
    case Violation::Metric::kProgress: return "progress";
    case Violation::Metric::kFeasibility: return "feasibility";
    case Violation::Metric::kConsistency: return "consistency";
  }
  return "?";
}

}  // namespace aoft::core
