#include "aoft/relaxation.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

#include "aoft/constraint.h"
#include "hypercube/gray.h"
#include "hypercube/topology.h"

namespace aoft::core {

namespace {

using cube::NodeId;

sim::Key pack(double v) { return std::bit_cast<sim::Key>(v); }
double unpack(sim::Key k) { return std::bit_cast<double>(k); }

constexpr double kNoEcho = std::numeric_limits<double>::infinity();
// Tolerance for the non-expansiveness progress assertion: pure floating-point
// round-off in 0.5*(x+y) is far below this.
constexpr double kEps = 1e-9;

struct RelaxShared {
  RelaxOptions opts;
  int dim = 0;
  std::vector<double> initial;
  std::vector<double> u_out;
  std::vector<double> final_delta;  // per node
  double lo = 0.0, hi = 0.0;        // global feasibility band (a-priori known)
};

// One neighbor's halo data for a sweep.
struct Halo {
  double value = 0.0;
  double echo = kNoEcho;
  double max_delta = 0.0;
};

sim::SimTask relax_node(sim::Ctx& ctx, RelaxShared& sh) {
  const NodeId me = ctx.id();
  const NodeId num_nodes = ctx.topo().num_nodes();
  const std::size_t cells = sh.opts.cells_per_node;
  const auto& cm = sh.opts.cost;

  const auto ring = cube::gray_chain_position(ctx.topo(), me);
  const NodeId rank = ring.rank;
  const bool has_left = ring.has_prev;
  const bool has_right = ring.has_next;
  const NodeId left = ring.prev;
  const NodeId right = ring.next;
  (void)num_nodes;

  std::vector<double> u(sh.initial.begin() + static_cast<std::ptrdiff_t>(rank * cells),
                        sh.initial.begin() + static_cast<std::ptrdiff_t>((rank + 1) * cells));
  std::vector<double> next(cells, 0.0);

  // The constraint predicate over one sweep's observable state.
  struct SweepState {
    double max_delta = 0.0;        // this sweep's largest update
    double bound_delta = 0.0;      // largest prev-sweep delta in the window
    double lo = 0.0, hi = 0.0;     // extremes of the new values
    double feas_lo = 0.0, feas_hi = 0.0;
    double echo_left = kNoEcho, sent_left = kNoEcho;
    double echo_right = kNoEcho, sent_right = kNoEcho;
    bool first = true;
  };
  ConstraintPredicate<SweepState> phi;
  if (sh.opts.check_progress)
    phi.progress([](const SweepState&, const SweepState& s) -> std::optional<std::string> {
      if (!s.first && s.max_delta > s.bound_delta + kEps)
        return "update magnitude grew beyond its dependence window";
      return std::nullopt;
    });
  if (sh.opts.check_feasibility)
    phi.feasibility([](const SweepState&, const SweepState& s) -> std::optional<std::string> {
      if (s.lo < s.feas_lo - kEps || s.hi > s.feas_hi + kEps)
        return "value escaped the boundary-data band (maximum principle)";
      return std::nullopt;
    });
  if (sh.opts.check_consistency)
    phi.consistency([](const SweepState&, const SweepState& s) -> std::optional<std::string> {
      const bool left_bad = s.echo_left != kNoEcho && s.sent_left != kNoEcho &&
                            s.echo_left != s.sent_left;
      const bool right_bad = s.echo_right != kNoEcho && s.sent_right != kNoEcho &&
                             s.echo_right != s.sent_right;
      if (left_bad || right_bad) return "halo echo disagrees with the value sent";
      return std::nullopt;
    });

  double prev_max_delta = 0.0;
  double sent_left_prev = kNoEcho, sent_right_prev = kNoEcho;
  double recv_left_prev = kNoEcho, recv_right_prev = kNoEcho;
  SweepState prev_state;

  for (int sweep = 0; sweep < sh.opts.sweeps; ++sweep) {
    // Exchange halos with ring neighbors (lower rank first for determinism;
    // the even/odd rank parity decides send-first vs receive-first so the
    // rendezvous pattern matches the channel discipline).
    Halo from_left, from_right;
    const double my_left_edge = u.front();
    const double my_right_edge = u.back();

    auto send_halo = [&](NodeId to, double edge, double echo) {
      sim::Message msg;
      msg.kind = sim::MsgKind::kApp;
      msg.stage = sweep;
      msg.tag = 0;
      msg.data = {pack(edge), pack(echo), pack(prev_max_delta)};
      ctx.send(to, std::move(msg));
    };
    bool ok = true;
    // Both directions: sends are non-blocking, so fire them first, then
    // drain the two receives.
    if (has_left) send_halo(left, my_left_edge, recv_left_prev);
    if (has_right) send_halo(right, my_right_edge, recv_right_prev);
    if (has_left) {
      auto r = co_await ctx.recv(left);
      if (!r.ok) {
        ctx.error({0, sweep, -1, sim::ErrorSource::kTimeout, "no halo from left"});
        ok = false;
      } else {
        ctx.account_recv(r.msg);
        if (r.msg.data.size() == 3) {
          from_left.value = unpack(r.msg.data[0]);
          from_left.echo = unpack(r.msg.data[1]);
          from_left.max_delta = unpack(r.msg.data[2]);
        }
      }
    }
    if (ok && has_right) {
      auto r = co_await ctx.recv(right);
      if (!r.ok) {
        ctx.error({0, sweep, -1, sim::ErrorSource::kTimeout, "no halo from right"});
        ok = false;
      } else {
        ctx.account_recv(r.msg);
        if (r.msg.data.size() == 3) {
          from_right.value = unpack(r.msg.data[0]);
          from_right.echo = unpack(r.msg.data[1]);
          from_right.max_delta = unpack(r.msg.data[2]);
        }
      }
    }
    if (!ok) break;

    // Jacobi sweep over the chunk.
    const double left_val = has_left ? from_left.value : sh.opts.left;
    const double right_val = has_right ? from_right.value : sh.opts.right;
    SweepState state;
    state.first = sweep == 0;
    state.feas_lo = sh.lo;
    state.feas_hi = sh.hi;
    state.lo = std::numeric_limits<double>::infinity();
    state.hi = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < cells; ++k) {
      const double lhs = k == 0 ? left_val : u[k - 1];
      const double rhs = k + 1 == cells ? right_val : u[k + 1];
      next[k] = 0.5 * (lhs + rhs);
      state.max_delta = std::max(state.max_delta, std::fabs(next[k] - u[k]));
      state.lo = std::min(state.lo, next[k]);
      state.hi = std::max(state.hi, next[k]);
    }
    ctx.charge(cm.cmp * static_cast<double>(3 * cells));
    state.bound_delta = std::max({prev_max_delta,
                                  has_left ? from_left.max_delta : 0.0,
                                  has_right ? from_right.max_delta : 0.0});
    state.echo_left = has_left ? from_left.echo : kNoEcho;
    state.sent_left = sent_left_prev;
    state.echo_right = has_right ? from_right.echo : kNoEcho;
    state.sent_right = sent_right_prev;

    if (auto v = phi(prev_state, state)) {
      const auto src = v->metric == Violation::Metric::kProgress
                           ? sim::ErrorSource::kPhiP
                           : v->metric == Violation::Metric::kFeasibility
                                 ? sim::ErrorSource::kPhiF
                                 : sim::ErrorSource::kPhiC;
      ctx.error({0, sweep, -1, src, v->detail});
      break;
    }

    u.swap(next);
    prev_max_delta = state.max_delta;
    sent_left_prev = my_left_edge;
    sent_right_prev = my_right_edge;
    recv_left_prev = has_left ? from_left.value : kNoEcho;
    recv_right_prev = has_right ? from_right.value : kNoEcho;
    prev_state = state;
  }

  std::copy(u.begin(), u.end(),
            sh.u_out.begin() + static_cast<std::ptrdiff_t>(rank * cells));
  sh.final_delta[me] = prev_max_delta;
  co_return;
}

}  // namespace

RelaxRun run_relaxation(int dim, std::span<const double> initial,
                        const RelaxOptions& opts) {
  const std::size_t total = opts.cells_per_node * (std::size_t{1} << dim);
  RelaxShared sh;
  sh.opts = opts;
  sh.dim = dim;
  if (initial.empty())
    sh.initial.assign(total, 0.0);
  else {
    assert(initial.size() == total);
    sh.initial.assign(initial.begin(), initial.end());
  }
  sh.u_out.assign(total, 0.0);
  sh.final_delta.assign(std::size_t{1} << dim, 0.0);
  sh.lo = std::min(opts.left, opts.right);
  sh.hi = std::max(opts.left, opts.right);
  for (double v : sh.initial) {
    sh.lo = std::min(sh.lo, v);
    sh.hi = std::max(sh.hi, v);
  }

  sim::Machine machine(cube::Topology{dim}, opts.cost);
  machine.set_interceptor(opts.interceptor);
  machine.run([&sh](sim::Ctx& ctx) { return relax_node(ctx, sh); });

  RelaxRun run;
  run.u = std::move(sh.u_out);
  run.errors = machine.errors();
  run.summary = machine.summary();
  for (double d : sh.final_delta)
    run.max_update_last_sweep = std::max(run.max_update_last_sweep, d);
  return run;
}

}  // namespace aoft::core
