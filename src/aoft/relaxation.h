// AOFT-protected distributed Jacobi relaxation.
//
// The paper positions parallel sorting as the first *non-iterative* use of
// the constraint-predicate paradigm; its earlier applications were iterative
// relaxations (matrix iteration [7], relaxation labelling [6]).  This module
// reconstructs that original setting on the same simulated multicomputer:
// the 1-D Laplace problem u_k = (u_{k-1} + u_{k+1})/2 with fixed ends,
// distributed in contiguous chunks over a Gray-code ring embedded in the
// hypercube (ring neighbors are cube neighbors), solved by synchronous
// Jacobi sweeps with halo exchange.
//
// The constraint predicate, built with aoft::core::ConstraintPredicate:
//
//   progress    — a cell's update magnitude never exceeds the largest update
//                 seen in its dependence window one sweep earlier (Jacobi on
//                 an averaging stencil is non-expansive in max norm), and the
//                 sweep count is known a priori to all nodes;
//   feasibility — every value stays inside [min, max] of the boundary data
//                 (the discrete maximum principle — the paper's "natural
//                 problem constraint" par excellence);
//   consistency — every halo message echoes the value last received from the
//                 destination, so each link is continuously cross-audited by
//                 its two endpoints.
//
// A violation makes the node signal ERROR to the host and halt: fail-stop,
// exactly as in the sort.

#pragma once

#include <span>
#include <vector>

#include "sim/cost_model.h"
#include "sim/machine.h"

namespace aoft::core {

struct RelaxOptions {
  std::size_t cells_per_node = 8;  // chunk length per processor
  int sweeps = 64;                 // fixed, globally known iteration count
  double left = 0.0;               // Dirichlet boundary values
  double right = 1.0;
  sim::CostModel cost{};
  sim::LinkInterceptor* interceptor = nullptr;
  bool check_progress = true;
  bool check_feasibility = true;
  bool check_consistency = true;
};

struct RelaxRun {
  std::vector<double> u;  // final field, cells_per_node * 2^dim values
  std::vector<sim::ErrorReport> errors;
  sim::RunSummary summary;
  double max_update_last_sweep = 0.0;  // convergence indicator

  bool fail_stop() const { return !errors.empty(); }
};

// Solve on a simulated dim-cube from the given initial interior field
// (size cells_per_node * 2^dim); pass an empty span for an all-zero start.
RelaxRun run_relaxation(int dim, std::span<const double> initial,
                        const RelaxOptions& opts = {});

}  // namespace aoft::core
