#include "aoft/labeling.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "aoft/constraint.h"
#include "hypercube/gray.h"

namespace aoft::core {

namespace {

using cube::NodeId;

sim::Key pack(double v) { return std::bit_cast<sim::Key>(v); }
double unpack(sim::Key k) { return std::bit_cast<double>(k); }

constexpr double kEps = 1e-9;

struct LabelingShared {
  LabelingOptions opts;
  LabelingProblem problem;
  int dim = 0;
  std::vector<double> out;
};

// One chunk-boundary halo: the neighbor's edge label vector plus the echo of
// the vector last received from us.
struct Halo {
  std::vector<double> edge;
  std::vector<double> echo;  // empty on the first sweep
  bool valid = false;
};

sim::SimTask labeling_node(sim::Ctx& ctx, LabelingShared& sh) {
  const NodeId me = ctx.id();
  const std::size_t L = sh.problem.labels;
  const std::size_t chunk = sh.opts.objects_per_node;
  const auto& cm = sh.opts.cost;
  const auto ring = cube::gray_chain_position(ctx.topo(), me);

  // My objects' label vectors, flattened chunk × L.
  std::vector<double> p(
      sh.problem.initial.begin() + static_cast<std::ptrdiff_t>(ring.rank * chunk * L),
      sh.problem.initial.begin() +
          static_cast<std::ptrdiff_t>((ring.rank + 1) * chunk * L));
  std::vector<double> next(p.size(), 0.0);
  std::vector<double> support(p.size(), 0.0);

  const auto r = [&](std::size_t a, std::size_t b) {
    return sh.problem.compat[a * L + b];
  };

  // The constraint predicate over one sweep's observable state.
  struct SweepState {
    double min_prob = 0.0, max_prob = 1.0;  // extremes of the new vectors
    double worst_sum_dev = 0.0;             // max |Σ_λ p'(λ) − 1|
    double worst_support_loss = 0.0;        // max over objects of Σpq − Σp'q
    bool echo_ok = true;
  };
  ConstraintPredicate<SweepState> phi;
  if (sh.opts.check_progress)
    phi.progress([](const SweepState&, const SweepState& s) -> std::optional<std::string> {
      if (s.worst_support_loss > kEps)
        return "updated labeling lost support against its own support vector";
      return std::nullopt;
    });
  if (sh.opts.check_feasibility)
    phi.feasibility([](const SweepState&, const SweepState& s) -> std::optional<std::string> {
      if (s.min_prob < -kEps || s.max_prob > 1.0 + kEps || s.worst_sum_dev > 1e-6)
        return "label vector left the probability simplex";
      return std::nullopt;
    });
  if (sh.opts.check_consistency)
    phi.consistency([](const SweepState&, const SweepState& s) -> std::optional<std::string> {
      if (!s.echo_ok) return "halo echo disagrees with the vector sent";
      return std::nullopt;
    });

  std::vector<double> sent_left_prev, sent_right_prev;
  std::vector<double> recv_left_prev, recv_right_prev;
  SweepState prev_state;

  auto vectors_equal = [](const std::vector<double>& a, const std::vector<double>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  };

  for (int sweep = 0; sweep < sh.opts.sweeps; ++sweep) {
    // Halo exchange with the ring neighbors: edge vector + echo.
    auto send_halo = [&](NodeId to, std::span<const double> edge,
                         const std::vector<double>& echo) {
      sim::Message msg;
      msg.kind = sim::MsgKind::kApp;
      msg.stage = sweep;
      msg.tag = 1;  // labeling halo
      msg.data.reserve(edge.size() + echo.size() + 1);
      msg.data.push_back(static_cast<sim::Key>(echo.size()));
      for (double v : edge) msg.data.push_back(pack(v));
      for (double v : echo) msg.data.push_back(pack(v));
      ctx.send(to, std::move(msg));
    };
    const std::span<const double> my_left_edge(p.data(), L);
    const std::span<const double> my_right_edge(p.data() + (chunk - 1) * L, L);
    if (ring.has_prev) send_halo(ring.prev, my_left_edge, recv_left_prev);
    if (ring.has_next) send_halo(ring.next, my_right_edge, recv_right_prev);

    Halo from_left, from_right;
    bool ok = true;
    if (ring.has_prev) {
      auto rmsg = co_await ctx.recv(ring.prev);
      if (!rmsg.ok) {
        ctx.error({0, sweep, -1, sim::ErrorSource::kTimeout, "no halo from prev"});
        ok = false;
      } else {
        ctx.account_recv(rmsg.msg);
        const auto& d = rmsg.msg.data;
        if (d.size() >= 1 + L) {
          const std::size_t echo_len = static_cast<std::size_t>(d[0]);
          from_left.edge.assign(L, 0.0);
          for (std::size_t l = 0; l < L; ++l) from_left.edge[l] = unpack(d[1 + l]);
          from_left.echo.assign(echo_len, 0.0);
          for (std::size_t l = 0; l < echo_len && 1 + L + l < d.size(); ++l)
            from_left.echo[l] = unpack(d[1 + L + l]);
          from_left.valid = true;
        }
      }
    }
    if (ok && ring.has_next) {
      auto rmsg = co_await ctx.recv(ring.next);
      if (!rmsg.ok) {
        ctx.error({0, sweep, -1, sim::ErrorSource::kTimeout, "no halo from next"});
        ok = false;
      } else {
        ctx.account_recv(rmsg.msg);
        const auto& d = rmsg.msg.data;
        if (d.size() >= 1 + L) {
          const std::size_t echo_len = static_cast<std::size_t>(d[0]);
          from_right.edge.assign(L, 0.0);
          for (std::size_t l = 0; l < L; ++l) from_right.edge[l] = unpack(d[1 + l]);
          from_right.echo.assign(echo_len, 0.0);
          for (std::size_t l = 0; l < echo_len && 1 + L + l < d.size(); ++l)
            from_right.echo[l] = unpack(d[1 + L + l]);
          from_right.valid = true;
        }
      }
    }
    if (!ok) break;

    // Rosenfeld update over the chunk.
    SweepState state;
    state.min_prob = 1.0;
    state.max_prob = 0.0;
    for (std::size_t i = 0; i < chunk; ++i) {
      // Support from the two chain neighbors (one at the global ends).
      const double* left_vec =
          i > 0 ? p.data() + (i - 1) * L
                : (ring.has_prev && from_left.valid ? from_left.edge.data() : nullptr);
      const double* right_vec =
          i + 1 < chunk
              ? p.data() + (i + 1) * L
              : (ring.has_next && from_right.valid ? from_right.edge.data() : nullptr);
      double old_support_mass = 0.0;
      for (std::size_t l = 0; l < L; ++l) {
        double q = 0.0;
        for (std::size_t mu = 0; mu < L; ++mu) {
          if (left_vec) q += r(l, mu) * left_vec[mu];
          if (right_vec) q += r(l, mu) * right_vec[mu];
        }
        support[i * L + l] = q;
        old_support_mass += p[i * L + l] * q;
      }
      double z = 0.0;
      for (std::size_t l = 0; l < L; ++l) {
        next[i * L + l] = p[i * L + l] * (1.0 + support[i * L + l]);
        z += next[i * L + l];
      }
      double sum = 0.0, new_support_mass = 0.0;
      for (std::size_t l = 0; l < L; ++l) {
        next[i * L + l] /= z;
        sum += next[i * L + l];
        new_support_mass += next[i * L + l] * support[i * L + l];
        state.min_prob = std::min(state.min_prob, next[i * L + l]);
        state.max_prob = std::max(state.max_prob, next[i * L + l]);
      }
      state.worst_sum_dev = std::max(state.worst_sum_dev, std::fabs(sum - 1.0));
      state.worst_support_loss =
          std::max(state.worst_support_loss, old_support_mass - new_support_mass);
    }
    ctx.charge(cm.cmp * static_cast<double>(chunk * L * L * 2));

    // Echo audit: the neighbor must have echoed exactly what we sent last
    // sweep.
    state.echo_ok = true;
    if (ring.has_prev && from_left.valid && !sent_left_prev.empty() &&
        !from_left.echo.empty())
      state.echo_ok &= vectors_equal(from_left.echo, sent_left_prev);
    if (ring.has_next && from_right.valid && !sent_right_prev.empty() &&
        !from_right.echo.empty())
      state.echo_ok &= vectors_equal(from_right.echo, sent_right_prev);

    if (auto v = phi(prev_state, state)) {
      const auto src = v->metric == Violation::Metric::kProgress
                           ? sim::ErrorSource::kPhiP
                           : v->metric == Violation::Metric::kFeasibility
                                 ? sim::ErrorSource::kPhiF
                                 : sim::ErrorSource::kPhiC;
      ctx.error({0, sweep, -1, src, v->detail});
      break;
    }

    sent_left_prev.assign(my_left_edge.begin(), my_left_edge.end());
    sent_right_prev.assign(my_right_edge.begin(), my_right_edge.end());
    recv_left_prev = ring.has_prev && from_left.valid ? from_left.edge
                                                      : std::vector<double>{};
    recv_right_prev = ring.has_next && from_right.valid ? from_right.edge
                                                        : std::vector<double>{};
    p.swap(next);
    prev_state = state;
  }

  std::copy(p.begin(), p.end(),
            sh.out.begin() + static_cast<std::ptrdiff_t>(ring.rank * chunk * L));
  co_return;
}

}  // namespace

std::vector<std::size_t> LabelingRun::decisions(std::size_t labels) const {
  std::vector<std::size_t> out(p.size() / labels, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::size_t best = 0;
    for (std::size_t l = 1; l < labels; ++l)
      if (p[i * labels + l] > p[i * labels + best]) best = l;
    out[i] = best;
  }
  return out;
}

std::vector<double> smoothing_compat(std::size_t labels, double off) {
  std::vector<double> r(labels * labels, off);
  for (std::size_t l = 0; l < labels; ++l) r[l * labels + l] = 1.0;
  return r;
}

LabelingRun run_labeling(int dim, const LabelingProblem& problem,
                         const LabelingOptions& opts) {
  [[maybe_unused]] const std::size_t objects =
      opts.objects_per_node * (std::size_t{1} << dim);
  assert(problem.initial.size() == objects * problem.labels);
  assert(problem.compat.size() == problem.labels * problem.labels);

  LabelingShared sh;
  sh.opts = opts;
  sh.problem = problem;
  sh.dim = dim;
  sh.out.assign(problem.initial.size(), 0.0);

  sim::Machine machine(cube::Topology{dim}, opts.cost);
  machine.set_interceptor(opts.interceptor);
  machine.run([&sh](sim::Ctx& ctx) { return labeling_node(ctx, sh); });

  LabelingRun run;
  run.p = std::move(sh.out);
  run.errors = machine.errors();
  run.summary = machine.summary();
  return run;
}

}  // namespace aoft::core
