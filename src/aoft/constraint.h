// The application-oriented fault tolerance paradigm, as a reusable framework.
//
// The paper's method (§1, [7]) builds a *constraint predicate* Φ from three
// basis metrics derived at specification time:
//
//   progress    — each testable step advances toward the goal (for iterative
//                 convergent problems: error reduction; for the sort: longer
//                 validated bitonic sequences),
//   feasibility — every intermediate result stays inside the problem's
//                 solution space (natural constraints / boundary conditions),
//   consistency — redundantly received copies of the same datum agree, so a
//                 Byzantine peer cannot satisfy each checker locally while
//                 lying globally.
//
// The sort library implements Φ directly (sort/predicates.h).  This header
// gives the *generic* shape: applications declare small predicate callables
// over their own state types and compose them into a ConstraintPredicate that
// yields the first violation.  aoft/relaxation.h is a second, independent
// application of the same frame, demonstrating the paper's claim that the
// paradigm is not sorting-specific.

#pragma once

#include <concepts>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace aoft::core {

// A violated executable assertion.
struct Violation {
  enum class Metric { kProgress, kFeasibility, kConsistency } metric{};
  std::string detail;
};

const char* to_string(Violation::Metric m);

// A predicate over (previous state, candidate state) — progress is inherently
// relative; feasibility/consistency predicates may ignore `prev`.
template <typename P, typename State>
concept StatePredicate = requires(const P& p, const State& prev, const State& cur) {
  { p(prev, cur) } -> std::convertible_to<std::optional<Violation>>;
};

// An ordered collection of predicates evaluated until the first violation.
// Progress/feasibility/consistency components are registered with their
// metric so diagnostics name the failing basis metric.
template <typename State>
class ConstraintPredicate {
 public:
  using Fn = std::function<std::optional<std::string>(const State&, const State&)>;

  ConstraintPredicate& progress(Fn fn) {
    parts_.emplace_back(Violation::Metric::kProgress, std::move(fn));
    return *this;
  }
  ConstraintPredicate& feasibility(Fn fn) {
    parts_.emplace_back(Violation::Metric::kFeasibility, std::move(fn));
    return *this;
  }
  ConstraintPredicate& consistency(Fn fn) {
    parts_.emplace_back(Violation::Metric::kConsistency, std::move(fn));
    return *this;
  }

  std::size_t size() const { return parts_.size(); }

  // First violated component, or nullopt when the state satisfies Φ.
  std::optional<Violation> operator()(const State& prev, const State& cur) const {
    for (const auto& [metric, fn] : parts_) {
      if (auto detail = fn(prev, cur))
        return Violation{metric, std::move(*detail)};
    }
    return std::nullopt;
  }

 private:
  std::vector<std::pair<Violation::Metric, Fn>> parts_;
};

}  // namespace aoft::core
