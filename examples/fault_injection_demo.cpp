// Fault-injection demo: the difference reliability makes.
//
// Build & run:   ./build/examples/fault_injection_demo
//
// One Byzantine processor (node 5) silently inverts its compare-exchange
// direction from stage 1 onward, and one Byzantine link tells half the cube
// a different story about node 3's element.  The same faults drive:
//
//   * S_NR  — the unprotected bitonic sort: terminates normally and hands
//             back a WRONG answer with no indication whatsoever;
//   * S_FT  — the application-oriented fault-tolerant sort: some peer's
//             executable assertion fires, the node signals ERROR to the
//             host, and the system fail-stops (paper Thm 3).

#include <cstdio>

#include "fault/adversary.h"
#include "fault/localization.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

int main() {
  using namespace aoft;

  const int dim = 4;
  const auto input = util::random_keys(2025, std::size_t{1} << dim);

  // The fault mix.
  fault::NodeFaultMap processor_faults;
  processor_faults[5].invert_direction_from = fault::StagePoint{1, 1};
  fault::Adversary link_faults;
  link_faults.add(fault::two_faced_gossip(
      2, {2, 0}, /*entry=*/3, /*delta=*/4096, /*m=*/1,
      [](cube::NodeId dest) { return (dest & 1u) == 1u; }));

  // --- unprotected baseline --------------------------------------------------
  sort::SnrOptions snr_opts;
  snr_opts.node_faults = processor_faults;
  snr_opts.interceptor = &link_faults;
  const auto snr = sort::run_snr(dim, input, snr_opts);
  std::printf("S_NR (unprotected)  : outcome=%s, error reports=%zu\n",
              sort::to_string(sort::classify(snr, input)), snr.errors.size());

  // --- fault-tolerant sort ---------------------------------------------------
  fault::Adversary link_faults2;  // interceptors are single-run objects
  link_faults2.add(fault::two_faced_gossip(
      2, {2, 0}, 3, 4096, 1, [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
  sort::SftOptions sft_opts;
  sft_opts.node_faults = processor_faults;
  sft_opts.interceptor = &link_faults2;
  const auto sft = sort::run_sft(dim, input, sft_opts);
  std::printf("S_FT (fault-tolerant): outcome=%s, error reports=%zu\n\n",
              sort::to_string(sort::classify(sft, input)), sft.errors.size());

  std::printf("S_FT diagnostics delivered to the host:\n");
  for (const auto& e : sft.errors)
    std::printf("  node %-2u stage %d iter %2d  %-24s %s\n", e.node, e.stage,
                e.iter, sim::to_string(e.source), e.detail.c_str());

  const auto diagnosis = fault::localize(sft.errors, dim);
  std::printf("\nhost-side localization from the earliest reports: suspects =");
  for (auto s : diagnosis.suspects) std::printf(" %u", s);
  std::printf("%s\n", diagnosis.link_suspected ? " (link fault suspected)" : "");

  const bool ok = sort::classify(snr, input) == sort::Outcome::kSilentWrong &&
                  sort::classify(sft, input) == sort::Outcome::kFailStop;
  std::printf("\n%s\n", ok ? "demo outcome as expected: S_NR silently wrong, "
                             "S_FT failed stop."
                           : "unexpected demo outcome!");
  return ok ? 0 : 1;
}
