// Block-sorting application: an external-sort-style workload.
//
// Build & run:   ./build/examples/block_sort_app
//
// The paper's motivating setting (§1) is sorting as a *sub-problem* of a
// larger parallel application: the data already lives in the node
// processors, so shipping everything through the host defeats the point.
// Here a 64-node cube holds 128 keys per node (a pre-partitioned index-build
// shard, say).  We sort the whole 8K-key dataset in place three ways and
// compare cost — the Figure-8 scenario as an application, not a bench.

#include <algorithm>
#include <cstdio>

#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

int main() {
  using namespace aoft;

  const int dim = 6;            // 64 nodes
  const std::size_t m = 128;    // keys per node
  const std::size_t total = (std::size_t{1} << dim) * m;
  const auto input = util::random_keys(77, total);

  std::printf("dataset: %zu keys, %u nodes, %zu keys/node\n\n", total,
              1u << dim, m);

  sort::SnrOptions snr_opts;
  snr_opts.block = m;
  sort::SftOptions sft_opts;
  sft_opts.block = m;
  sort::HostSortOptions host_opts;
  host_opts.block = m;

  const auto snr = sort::run_snr(dim, input, snr_opts);
  const auto sft = sort::run_sft(dim, input, sft_opts);
  const auto host = sort::run_host_sort(dim, input, host_opts);

  auto report = [&](const char* name, const sort::SortRun& run) {
    std::printf("%-22s elapsed %10.0f ticks   comm(max/node) %9.0f   "
                "outcome %s\n",
                name, run.summary.elapsed, run.summary.max_comm,
                sort::to_string(sort::classify(run, input)));
  };
  report("S_NR (unprotected)", snr);
  report("S_FT (fault-tolerant)", sft);
  report("host sequential sort", host);

  std::vector<sort::Key> expect(input.begin(), input.end());
  std::sort(expect.begin(), expect.end());
  const bool all_match = snr.output == expect && sft.output == expect &&
                         host.output == expect;

  std::printf("\nwith %zu keys per node the reliability overhead is already\n"
              "cheaper than funnelling the data through the host: S_FT/host = "
              "%.2f\n",
              m, sft.summary.elapsed / host.summary.elapsed);
  std::printf("all three outputs identical and sorted: %s\n",
              all_match ? "yes" : "NO");
  return all_match ? 0 : 1;
}
