// The AOFT paradigm beyond sorting: a fault-tolerant Jacobi relaxation.
//
// Build & run:   ./build/examples/relaxation_aoft
//
// The constraint-predicate method predates the sorting paper (its earlier
// applications were iterative relaxations).  This example solves the 1-D
// heat-equation steady state on a 16-node cube — chunks of a rod distributed
// over a Gray-code ring — under the generic progress / feasibility /
// consistency predicates of aoft/constraint.h, then repeats the run with a
// Byzantine link quietly biasing one halo exchange and shows the fail-stop.

#include <cstdio>

#include "aoft/relaxation.h"
#include "fault/adversary.h"

int main() {
  using namespace aoft;

  core::RelaxOptions opts;
  opts.cells_per_node = 8;
  opts.sweeps = 3000;
  opts.left = 100.0;  // hot end (degrees)
  opts.right = 20.0;  // cold end

  const int dim = 4;
  const auto clean = core::run_relaxation(dim, {}, opts);
  std::printf("clean run: %zu cells, errors=%zu, last-sweep max update=%.2e\n",
              clean.u.size(), clean.errors.size(), clean.max_update_last_sweep);
  std::printf("temperature profile (every 16th cell):\n  ");
  for (std::size_t k = 0; k < clean.u.size(); k += 16)
    std::printf("%6.1f", clean.u[k]);
  std::printf("\n\n");

  // Same problem, but a link lies about a halo value (within the plausible
  // band, so only the echo consistency check can convict it).
  fault::Adversary adversary;
  adversary.add([](cube::NodeId from, cube::NodeId to, sim::Message& msg) {
    if (from == 3 && to == 2 && msg.kind == sim::MsgKind::kApp && msg.stage == 40 &&
        msg.data.size() == 3) {
      msg.data[0] = std::bit_cast<sim::Key>(55.5);
      return fault::Action::kMutated;
    }
    return fault::Action::kPass;
  });
  auto faulty_opts = opts;
  faulty_opts.interceptor = &adversary;
  const auto faulty = core::run_relaxation(dim, {}, faulty_opts);
  std::printf("faulty run: errors=%zu (fail-stop=%s)\n", faulty.errors.size(),
              faulty.fail_stop() ? "yes" : "no");
  for (const auto& e : faulty.errors)
    std::printf("  node %-2u sweep %-3d %-24s %s\n", e.node, e.stage,
                sim::to_string(e.source), e.detail.c_str());

  return clean.errors.empty() && faulty.fail_stop() ? 0 : 1;
}
