// Quickstart: reliably sort a list on a simulated hypercube multicomputer.
//
// Build & run:   ./build/examples/quickstart
//
// This is the paper's own worked example (Figure 5): the list
// {10, 8, 3, 9, 4, 2, 7, 5} distributed one key per node on a 3-cube,
// sorted by the fault-tolerant bitonic sort S_FT.  Every intermediate
// bitonic sequence is checked by the peers; with no faults injected the run
// completes without a single alarm.

#include <cstdio>

#include "sort/sft.h"

int main() {
  using namespace aoft;

  // The input, flattened: node p holds input[p].
  const std::vector<sort::Key> input{10, 8, 3, 9, 4, 2, 7, 5};
  const int dim = 3;  // 2^3 = 8 nodes

  sort::SftOptions opts;  // defaults: every predicate enabled, no faults
  const auto run = sort::run_sft(dim, input, opts);

  std::printf("input :");
  for (auto k : input) std::printf(" %lld", static_cast<long long>(k));
  std::printf("\noutput:");
  for (auto k : run.output) std::printf(" %lld", static_cast<long long>(k));
  std::printf("\n\n");

  std::printf("outcome            : %s\n", sort::to_string(sort::classify(run, input)));
  std::printf("error reports      : %zu\n", run.errors.size());
  std::printf("elapsed (ticks)    : %.1f\n", run.summary.elapsed);
  std::printf("messages exchanged : %llu\n",
              static_cast<unsigned long long>(run.summary.total_msgs));
  std::printf("key words on wire  : %llu\n",
              static_cast<unsigned long long>(run.summary.total_words));
  return run.errors.empty() ? 0 : 1;
}
