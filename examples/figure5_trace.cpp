// Figure 5, reproduced as a live trace.
//
// Build & run:   ./build/examples/figure5_trace
//
// The paper's Figure 5 walks S_FT through sorting {10,8,3,9,4,2,7,5} on a
// 3-cube, showing the last bitonic sequence (LBS) and the previous validated
// one (LLBS) per stage.  This example prints the same walkthrough from the
// stage-boundary snapshots of the real implementation — every line below is
// observed, not narrated.

#include <cstdio>
#include <map>

#include "sort/sft.h"

int main() {
  using namespace aoft;

  const std::vector<sort::Key> input{10, 8, 3, 9, 4, 2, 7, 5};
  const int dim = 3;

  std::printf("S_FT on a 3-cube, input (node 0..7): ");
  for (auto k : input) std::printf("%lld ", static_cast<long long>(k));
  std::printf("\n\n");

  // Collect one snapshot per (stage, window): all members agree (that is
  // itself a checked invariant), so the first reporter suffices.
  std::map<std::pair<int, cube::NodeId>, sort::StageSnapshot> snaps;
  sort::SftOptions opts;
  opts.observer = [&snaps](const sort::StageSnapshot& s) {
    snaps.emplace(std::make_pair(s.stage, s.window.start), s);
  };
  const auto run = sort::run_sft(dim, input, opts);

  int last_stage = -1;
  for (const auto& [key, s] : snaps) {
    const auto [stage, start] = key;
    if (stage != last_stage) {
      if (stage == dim)
        std::printf("\nfinal verification round (whole cube):\n");
      else
        std::printf("\nend of stage %d (windows of %u nodes):\n", stage,
                    s.window.size());
      last_stage = stage;
    }
    std::printf("  SC[%u..%u]  LBS:", s.window.start, s.window.end);
    for (auto k : s.lbs_window) std::printf(" %2lld", static_cast<long long>(k));
    if (stage > 0) {
      std::printf("   LLBS:");
      for (auto k : s.llbs_window) std::printf(" %2lld", static_cast<long long>(k));
    }
    std::printf("\n");
  }

  std::printf("\nsorted result: ");
  for (auto k : run.output) std::printf("%lld ", static_cast<long long>(k));
  std::printf("\noutcome: %s, error reports: %zu\n",
              sort::to_string(sort::classify(run, input)), run.errors.size());
  return run.errors.empty() ? 0 : 1;
}
