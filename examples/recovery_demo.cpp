// Recovery demo: from fail-stop to fault tolerance.
//
// Build & run:   ./build/examples/recovery_demo
//
// The paper's S_FT stops at fail-stop — correct output or a detected halt.
// The recovery supervisor climbs the escalation ladder until the output is
// correct.  Two runs of the same sort (dim 4) show the two interesting rungs:
//
//   * a transient glitch (one dropped message, gone on retry) is rolled back
//     to the last host-certified stage checkpoint — the validated stages are
//     not re-executed;
//   * a permanent processor fault reproduces the fail-stop until its suspect
//     set stabilizes, then the workload is remapped onto the fault-free
//     3-subcube that excludes the culprit (blocks doubled), and finishes.

#include <cstdio>

#include "fault/adversary.h"
#include "fault/supervisor.h"
#include "util/rng.h"

namespace {

using namespace aoft;

void print_ladder(const char* title, const fault::SupervisedRun& run) {
  std::printf("%s\n", title);
  for (const auto& ev : run.events) {
    std::printf("  attempt %d: rung=%-9s dim=%d block=%zu resume-stage=%d "
                "-> %s\n",
                ev.attempt, fault::to_string(ev.rung), ev.config_dim, ev.block,
                ev.resume_stage, sort::to_string(ev.outcome));
    if (!ev.suspects.empty()) {
      std::printf("             suspects =");
      for (auto s : ev.suspects) std::printf(" %u", s);
      std::printf("%s\n", ev.link_suspected ? " (link fault suspected)" : "");
    }
  }
  if (!run.retired.empty()) {
    std::printf("  retired from service:");
    for (auto s : run.retired) std::printf(" node %u", s);
    std::printf("\n");
  }
  std::printf("  => %s after %d attempt(s) on rung '%s', %d stage(s) "
              "salvaged, %.1f ticks\n\n",
              sort::to_string(run.outcome), run.attempts,
              fault::to_string(run.final_rung), run.stages_salvaged,
              run.total_ticks);
}

}  // namespace

int main() {
  const int dim = 4;
  const auto input = util::random_keys(2026, std::size_t{1} << dim);

  // --- transient fault: one dropped message, recovered by rollback -----------
  fault::Adversary glitch;
  glitch.add(fault::drop_message(6, {3, 1}));  // late in the sort
  const auto transient = fault::run_supervised_sort(
      dim, input, {}, {},
      [&glitch](int attempt) -> sim::LinkInterceptor* {
        return attempt == 0 ? &glitch : nullptr;  // gone on retry
      });
  print_ladder("transient fault (node 6 drops one message at stage 3):",
               transient);

  // --- permanent fault: node 9 halts, survived by reconfiguration ------------
  sort::SftOptions faulty;
  faulty.node_faults[9].halt_at = fault::StagePoint{2, 0};  // every attempt
  const auto permanent = fault::run_supervised_sort(dim, input, faulty);
  print_ladder("permanent fault (node 9 halts at stage 2 on every attempt):",
               permanent);

  const bool ok = transient.outcome == sort::Outcome::kCorrect &&
                  transient.final_rung == fault::Rung::kRollback &&
                  permanent.outcome == sort::Outcome::kCorrect &&
                  permanent.final_rung == fault::Rung::kSubcube;
  std::printf("%s\n", ok ? "demo outcome as expected: rollback recovered the "
                           "transient, reconfiguration survived the permanent "
                           "fault."
                         : "unexpected demo outcome!");
  return ok ? 0 : 1;
}
